#include "wf/sites.hpp"

#include <cmath>

namespace bento::wf {

std::size_t SiteModel::total_bytes() const {
  std::size_t total = index_bytes;
  for (std::size_t r : resource_bytes) total += r;
  return total;
}

util::Bytes SiteModel::body_for(const std::string& path, std::uint64_t visit_seed,
                                double noise) const {
  std::size_t base = 0;
  if (path == "/" || path == "/index.html") {
    base = index_bytes;
  } else if (path.rfind("/r", 0) == 0) {
    const std::size_t idx = static_cast<std::size_t>(std::stoul(path.substr(2)));
    if (idx < resource_bytes.size()) base = resource_bytes[idx];
  }
  if (base == 0) return util::to_bytes("404");

  // Per-visit size jitter.
  util::Rng visit_rng(visit_seed ^ (addr * 2654435761u) ^
                      std::hash<std::string>{}(path));
  const double factor = 1.0 + noise * (visit_rng.uniform01() * 2.0 - 1.0);
  const std::size_t size = std::max<std::size_t>(
      64, static_cast<std::size_t>(static_cast<double>(base) * factor));

  // Content: first `entropy` fraction random (incompressible), rest a
  // repetitive HTML-ish pattern (compressible). Deterministic per site.
  util::Bytes body;
  body.reserve(size);
  util::Rng content_rng(addr * 7919u);
  const std::size_t random_part = static_cast<std::size_t>(
      static_cast<double>(size) * entropy);
  body = content_rng.bytes(random_part);
  const std::string pattern = "<div class=\"c" + std::to_string(addr % 97) +
                              "\"><a href=\"/x\">item</a></div>\n";
  while (body.size() < size) {
    const std::size_t take = std::min(pattern.size(), size - body.size());
    body.insert(body.end(), pattern.begin(), pattern.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return body;
}

std::vector<SiteModel> make_popular_sites(int count, util::Rng& rng) {
  std::vector<SiteModel> sites;
  sites.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    SiteModel site;
    site.domain = "site" + std::to_string(i) + ".example";
    site.addr = tor::parse_addr("20." + std::to_string(i % 250) + "." +
                                std::to_string(i / 250) + ".1");
    // Log-uniform page sizes from ~60 KB to ~2.5 MB.
    const double log_total = std::log(60e3) +
                             rng.uniform01() * (std::log(2.5e6) - std::log(60e3));
    const double total = std::exp(log_total);
    const int resources = static_cast<int>(rng.uniform(4, 48));
    site.index_bytes = static_cast<std::size_t>(total * (0.08 + 0.12 * rng.uniform01()));
    const double rest = total - static_cast<double>(site.index_bytes);
    // Break the remainder into `resources` pieces with a skewed split.
    std::vector<double> weights;
    double weight_sum = 0;
    for (int r = 0; r < resources; ++r) {
      const double w = std::exp(rng.gaussian(0.0, 1.0));
      weights.push_back(w);
      weight_sum += w;
    }
    for (int r = 0; r < resources; ++r) {
      site.resource_bytes.push_back(std::max<std::size_t>(
          400, static_cast<std::size_t>(rest * weights[static_cast<std::size_t>(r)] /
                                        weight_sum)));
    }
    site.entropy = 0.25 + 0.6 * rng.uniform01();
    sites.push_back(std::move(site));
  }
  return sites;
}

std::vector<SiteModel> table2_sites() {
  // Sizes chosen so that (a) standard-Tor full-page times sit in the
  // paper's 3-8.5 s band at the calibrated circuit bandwidth, (b) pages
  // compress to under 1 MB except the largest, and (c) 7 MB padding
  // dominates everything (see bench/table2_download_times.cpp).
  auto make = [](const std::string& domain, tor::Addr addr, std::size_t index,
                 std::vector<std::size_t> resources, double entropy) {
    SiteModel s;
    s.domain = domain;
    s.addr = addr;
    s.index_bytes = index;
    s.resource_bytes = std::move(resources);
    s.entropy = entropy;
    return s;
  };
  std::vector<SiteModel> sites;
  sites.push_back(make("indiatoday.in", tor::parse_addr("30.1.0.1"), 180'000,
                       {120'000, 90'000, 80'000, 70'000, 60'000, 50'000, 45'000,
                        40'000, 35'000, 30'000, 28'000, 26'000, 24'000, 22'000,
                        20'000, 18'000, 16'000, 14'000, 12'000, 10'000},
                       0.55));
  sites.push_back(make("yahoo.com", tor::parse_addr("30.2.0.1"), 220'000,
                       {150'000, 110'000, 90'000, 75'000, 60'000, 50'000, 40'000,
                        35'000, 30'000, 25'000, 22'000, 20'000, 18'000, 15'000,
                        12'000, 10'000},
                       0.30));
  sites.push_back(make("netflix.com", tor::parse_addr("30.3.0.1"), 300'000,
                       {260'000, 200'000, 170'000, 150'000, 130'000, 110'000,
                        90'000, 80'000, 70'000, 60'000, 50'000, 40'000, 35'000,
                        30'000, 25'000, 20'000, 18'000, 16'000, 14'000, 12'000,
                        10'000, 10'000},
                       0.35));
  sites.push_back(make("ebay.com", tor::parse_addr("30.4.0.1"), 200'000,
                       {140'000, 100'000, 85'000, 70'000, 60'000, 50'000, 42'000,
                        36'000, 30'000, 26'000, 22'000, 18'000, 15'000, 12'000},
                       0.45));
  sites.push_back(make("aliexpress.com", tor::parse_addr("30.5.0.1"), 90'000,
                       {70'000, 55'000, 40'000, 32'000, 26'000, 20'000, 16'000,
                        12'000},
                       0.50));
  return sites;
}

}  // namespace bento::wf
