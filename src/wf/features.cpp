#include "wf/features.hpp"

#include <algorithm>
#include <cmath>

namespace bento::wf {

std::size_t feature_dim() {
  return 8 + kPrefixEvents + 3 + kCumulSamples;
}

Features extract_features(const Trace& trace) {
  Features f;
  f.reserve(feature_dim());

  double bytes_in = 0, bytes_out = 0;
  double count_in = 0, count_out = 0;
  for (const auto& e : trace.events) {
    if (e.outgoing) {
      bytes_out += static_cast<double>(e.wire_bytes);
      count_out += 1;
    } else {
      bytes_in += static_cast<double>(e.wire_bytes);
      count_in += 1;
    }
  }
  const double total_bytes = bytes_in + bytes_out;
  const double total_count = count_in + count_out;

  f.push_back(std::log1p(bytes_in));
  f.push_back(std::log1p(bytes_out));
  f.push_back(std::log1p(total_bytes));
  f.push_back(count_in);
  f.push_back(count_out);
  f.push_back(total_count > 0 ? count_in / total_count : 0);
  f.push_back(total_bytes > 0 ? bytes_in / total_bytes : 0);
  f.push_back(trace.duration());

  // Directional prefix: sign of the first kPrefixEvents events.
  for (int i = 0; i < kPrefixEvents; ++i) {
    if (i < static_cast<int>(trace.events.size())) {
      f.push_back(trace.events[static_cast<std::size_t>(i)].outgoing ? 1.0 : -1.0);
    } else {
      f.push_back(0.0);
    }
  }

  // Incoming burst statistics: maximal runs of consecutive incoming events.
  int bursts = 0;
  double max_burst = 0, current = 0, burst_sum = 0;
  for (const auto& e : trace.events) {
    if (!e.outgoing) {
      current += 1;
    } else if (current > 0) {
      bursts += 1;
      burst_sum += current;
      max_burst = std::max(max_burst, current);
      current = 0;
    }
  }
  if (current > 0) {
    bursts += 1;
    burst_sum += current;
    max_burst = std::max(max_burst, current);
  }
  f.push_back(static_cast<double>(bursts));
  f.push_back(max_burst);
  f.push_back(bursts > 0 ? burst_sum / bursts : 0);

  // CUMUL: sampled cumulative signed-byte curve.
  std::vector<double> cumulative;
  cumulative.reserve(trace.events.size());
  double acc = 0;
  for (const auto& e : trace.events) {
    acc += e.outgoing ? static_cast<double>(e.wire_bytes)
                      : -static_cast<double>(e.wire_bytes);
    cumulative.push_back(acc);
  }
  for (int i = 0; i < kCumulSamples; ++i) {
    if (cumulative.empty()) {
      f.push_back(0);
      continue;
    }
    const std::size_t at = std::min(
        cumulative.size() - 1,
        static_cast<std::size_t>(static_cast<double>(i) /
                                 (kCumulSamples - 1) *
                                 static_cast<double>(cumulative.size() - 1)));
    // Scale down so z-scoring has sane dynamic range.
    f.push_back(cumulative[at] / 4096.0);
  }
  return f;
}

Normalizer Normalizer::fit(const std::vector<Features>& rows) {
  Normalizer n;
  if (rows.empty()) return n;
  const std::size_t dim = rows[0].size();
  n.mean.assign(dim, 0.0);
  n.stddev.assign(dim, 0.0);
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < dim; ++i) n.mean[i] += row[i];
  }
  for (auto& m : n.mean) m /= static_cast<double>(rows.size());
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < dim; ++i) {
      const double d = row[i] - n.mean[i];
      n.stddev[i] += d * d;
    }
  }
  for (auto& s : n.stddev) {
    s = std::sqrt(s / static_cast<double>(rows.size()));
    if (s < 1e-9) s = 1.0;
  }
  return n;
}

Features Normalizer::apply(const Features& row) const {
  Features out(row.size());
  for (std::size_t i = 0; i < row.size(); ++i) {
    out[i] = (row[i] - mean[i]) / stddev[i];
  }
  return out;
}

}  // namespace bento::wf
