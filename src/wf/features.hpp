// Feature extraction for website fingerprinting.
//
// A compact CUMUL/DF-inspired feature vector: volume totals, packet
// counts, duration, directional prefix, burst statistics, and a sampled
// cumulative-sum curve. These are exactly the families of "salient
// features" the Browser defense is designed to destroy (§7).
#pragma once

#include <vector>

#include "wf/trace.hpp"

namespace bento::wf {

using Features = std::vector<double>;

inline constexpr int kCumulSamples = 24;
inline constexpr int kPrefixEvents = 20;

/// Extracts a fixed-length feature vector from a trace.
Features extract_features(const Trace& trace);

/// Dimension of extract_features' output.
std::size_t feature_dim();

/// Per-dimension z-score normalization fit on a training set.
struct Normalizer {
  std::vector<double> mean;
  std::vector<double> stddev;

  static Normalizer fit(const std::vector<Features>& rows);
  Features apply(const Features& row) const;
};

}  // namespace bento::wf
