// Remote attestation (paper §5.4 "Attestation").
//
// Flow, mirroring SGX EPID attestation against the Intel Attestation
// Service (IAS):
//   1. the enclave produces a Quote over (measurement, report_data) MACed
//      with the platform's provisioned attestation key;
//   2. the Bento server sends the quote to the (simulated) IAS, which
//      checks the MAC and the platform's TCB level and returns a *signed*
//      AttestationReport;
//   3. the client verifies the report signature against the IAS public key
//      and checks measurement, freshness and TCB status.
//
// Both verification paths from the paper exist: the client may contact the
// IAS itself, or accept a report the server obtained earlier and "stapled"
// to its reply (OCSP-stapling style), which keeps the client's use of Bento
// unlinkable by Intel.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "crypto/sign.hpp"
#include "tee/enclave.hpp"
#include "util/bytes.hpp"

namespace bento::tee {

struct Quote {
  Measurement measurement{};
  util::Bytes report_data;  // caller-chosen binding (e.g. channel hash)
  std::uint64_t platform_id = 0;
  std::uint32_t tcb_version = 0;
  crypto::Digest mac{};  // MAC under the platform attestation key

  util::Bytes serialize() const;
  static Quote deserialize(util::ByteView data);

 private:
  friend Quote generate_quote(const Enclave& enclave, util::ByteView report_data);
  friend class IntelAttestationService;
  util::Bytes mac_input() const;
};

/// Produced inside the enclave (EREPORT + quoting enclave, collapsed).
Quote generate_quote(const Enclave& enclave, util::ByteView report_data);

enum class TcbStatus : std::uint8_t { UpToDate = 0, OutOfDate = 1 };

struct AttestationReport {
  Quote quote;
  TcbStatus tcb_status = TcbStatus::UpToDate;
  std::uint64_t timestamp_micros = 0;
  crypto::Signature signature;  // by the IAS report-signing key

  util::Bytes signed_body() const;
  bool verify(crypto::Gp ias_public_key) const;

  /// Wire form for stapling into a Bento SpawnReply.
  util::Bytes serialize() const;
  static AttestationReport deserialize(util::ByteView data);
};

class IntelAttestationService {
 public:
  explicit IntelAttestationService(util::Rng& rng,
                                   std::uint32_t current_tcb_version = 2)
      : key_(crypto::SigningKey::generate(rng)), current_tcb_(current_tcb_version) {}

  crypto::Gp public_key() const { return key_.public_key(); }
  std::uint32_t current_tcb() const { return current_tcb_; }

  /// Provisioning: registers a platform's attestation key (EPID join).
  void provision(const Platform& platform);

  /// Verifies a quote; nullopt if the platform is unknown or the MAC is bad.
  /// A quote from a platform below the current TCB verifies but is flagged
  /// OutOfDate (paper: "check the current TCB version ... patched against
  /// known vulnerabilities").
  std::optional<AttestationReport> verify_quote(const Quote& quote,
                                                std::uint64_t now_micros) const;

  /// Models Intel publishing a new required patch level: older platforms
  /// start attesting as OutOfDate.
  void advance_tcb(std::uint32_t version) { current_tcb_ = version; }

 private:
  crypto::SigningKey key_;
  std::uint32_t current_tcb_;
  std::map<std::uint64_t, util::Bytes> platform_keys_;
};

}  // namespace bento::tee
