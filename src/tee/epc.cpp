#include "tee/epc.hpp"

namespace bento::tee {

void EpcManager::allocate(std::uint64_t enclave_id, std::size_t bytes) {
  if (bytes > usable_) {
    throw EpcExhausted("EpcManager: single enclave larger than usable EPC");
  }
  const std::size_t before_overflow = paged_out_bytes();
  auto it = allocations_.find(enclave_id);
  if (it != allocations_.end()) {
    committed_ -= it->second;
    it->second = bytes;
  } else {
    allocations_[enclave_id] = bytes;
  }
  committed_ += bytes;
  const std::size_t after_overflow = paged_out_bytes();
  if (after_overflow > before_overflow) {
    page_faults_ += (after_overflow - before_overflow + kEpcPageBytes - 1) / kEpcPageBytes;
  }
}

void EpcManager::free(std::uint64_t enclave_id) {
  auto it = allocations_.find(enclave_id);
  if (it == allocations_.end()) return;
  committed_ -= it->second;
  allocations_.erase(it);
}

}  // namespace bento::tee
