#include "tee/epc.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bento::tee {

namespace {
struct EpcMetrics {
  obs::Counter page_faults = obs::registry().counter("tee.epc_page_faults");
  obs::Gauge committed = obs::registry().gauge("tee.epc_committed_bytes");
};
EpcMetrics& epc_metrics() {
  static EpcMetrics m;
  return m;
}
}  // namespace

void EpcManager::allocate(std::uint64_t enclave_id, std::size_t bytes) {
  if (bytes > usable_) {
    throw EpcExhausted("EpcManager: single enclave larger than usable EPC");
  }
  const std::size_t before_overflow = paged_out_bytes();
  auto it = allocations_.find(enclave_id);
  if (it != allocations_.end()) {
    committed_ -= it->second;
    it->second = bytes;
  } else {
    allocations_[enclave_id] = bytes;
  }
  committed_ += bytes;
  const std::size_t after_overflow = paged_out_bytes();
  if (after_overflow > before_overflow) {
    const std::size_t faults =
        (after_overflow - before_overflow + kEpcPageBytes - 1) / kEpcPageBytes;
    page_faults_ += faults;
    epc_metrics().page_faults.inc(faults);
    obs::trace(obs::Ev::TeeEpcPage, static_cast<std::uint32_t>(enclave_id), faults,
               /*ok=*/false);
  }
  epc_metrics().committed.set(static_cast<std::int64_t>(committed_));
}

void EpcManager::free(std::uint64_t enclave_id) {
  auto it = allocations_.find(enclave_id);
  if (it == allocations_.end()) return;
  committed_ -= it->second;
  allocations_.erase(it);
  epc_metrics().committed.set(static_cast<std::int64_t>(committed_));
}

}  // namespace bento::tee
