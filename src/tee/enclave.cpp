#include "tee/enclave.hpp"

#include "crypto/hmac.hpp"
#include "util/serialize.hpp"

namespace bento::tee {

Measurement measure(util::ByteView code_image) { return crypto::sha256(code_image); }

std::string measurement_hex(const Measurement& m) {
  return util::to_hex(util::ByteView(m.data(), m.size()));
}

Platform::Platform(std::uint64_t platform_id, std::uint32_t tcb_version,
                   util::Rng& rng)
    : id_(platform_id),
      tcb_(tcb_version),
      attestation_key_(rng.bytes(32)),
      sealing_secret_(rng.bytes(32)) {}

void Platform::upgrade_tcb(std::uint32_t new_version) {
  if (new_version > tcb_) tcb_ = new_version;
}

Enclave::Enclave(Platform& platform, util::ByteView code_image, std::string name)
    : platform_(platform), measurement_(measure(code_image)), name_(std::move(name)) {}

crypto::AeadKey Enclave::sealing_key() const {
  // KDF(platform sealing secret, MRENCLAVE): the SGX EGETKEY contract.
  return crypto::AeadKey::from_bytes(crypto::hkdf(
      platform_.sealing_secret(),
      util::ByteView(measurement_.data(), measurement_.size()), "sgx-seal-key", 64));
}

util::Bytes Enclave::seal(util::ByteView plaintext) const {
  const std::uint64_t counter = ++seal_counter_;
  util::Writer w;
  w.u64(counter);
  w.raw(crypto::aead_seal(sealing_key(), crypto::nonce_from_counter(counter), {},
                          plaintext));
  return std::move(w).take();
}

std::optional<util::Bytes> Enclave::unseal(util::ByteView sealed) const {
  if (sealed.size() < 8 + crypto::kAeadTagLen) return std::nullopt;
  util::Reader r(sealed);
  const std::uint64_t counter = r.u64();
  return crypto::aead_open(sealing_key(), crypto::nonce_from_counter(counter), {},
                           sealed.subspan(8));
}

}  // namespace bento::tee
