// Software-simulated trusted execution environment (paper §2.2, §5.4).
//
// The paper runs functions inside Intel SGX enclaves via the Graphene
// library OS and conclaves [34]. No SGX hardware exists here, so this
// module reproduces the *contract* of SGX at the API level:
//
//   * measurement  — MRENCLAVE := SHA-256 of the loaded code image;
//   * sealing      — data encrypted under a key derived from the platform
//                    sealing secret and the measurement, so only the same
//                    enclave on the same platform can unseal;
//   * EPC limits   — the paper's 93 MiB usable protected memory, with
//                    paging beyond it (tee/epc.hpp);
//   * attestation  — quotes MACed with a platform key provisioned by the
//                    simulated Intel Attestation Service (tee/attestation.hpp).
//
// The simulation is honest about what it can and cannot show: it enforces
// the protocol-visible behaviour (who can decrypt what, what verifies), not
// hardware memory isolation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/aead.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace bento::tee {

/// MRENCLAVE-style code measurement.
using Measurement = crypto::Digest;

Measurement measure(util::ByteView code_image);
std::string measurement_hex(const Measurement& m);

/// A platform: one physical machine's TEE identity. Holds the sealing
/// secret and the attestation (EPID-style) key provisioned by the IAS.
class Platform {
 public:
  /// `tcb_version` models microcode patch level (checked by verifiers).
  Platform(std::uint64_t platform_id, std::uint32_t tcb_version, util::Rng& rng);

  std::uint64_t platform_id() const { return id_; }
  std::uint32_t tcb_version() const { return tcb_; }

  /// Used by attestation.cpp; derived key shared with the (simulated) IAS.
  const util::Bytes& attestation_key() const { return attestation_key_; }
  /// Platform sealing secret (never leaves the "hardware").
  const util::Bytes& sealing_secret() const { return sealing_secret_; }

  /// Simulates applying a microcode patch.
  void upgrade_tcb(std::uint32_t new_version);

 private:
  std::uint64_t id_;
  std::uint32_t tcb_;
  util::Bytes attestation_key_;
  util::Bytes sealing_secret_;
};

/// A loaded enclave instance.
class Enclave {
 public:
  Enclave(Platform& platform, util::ByteView code_image, std::string name);

  const Measurement& measurement() const { return measurement_; }
  const std::string& name() const { return name_; }
  const Platform& platform() const { return platform_; }

  /// Seals data so only an enclave with the same measurement on the same
  /// platform can unseal it (MRENCLAVE policy).
  util::Bytes seal(util::ByteView plaintext) const;
  std::optional<util::Bytes> unseal(util::ByteView sealed) const;

  /// Memory accounting hooks (wired to the EPC manager by the conclave).
  std::size_t memory_bytes() const { return memory_bytes_; }
  void set_memory_bytes(std::size_t bytes) { memory_bytes_ = bytes; }

 private:
  crypto::AeadKey sealing_key() const;
  Platform& platform_;
  Measurement measurement_;
  std::string name_;
  std::size_t memory_bytes_ = 0;
  mutable std::uint64_t seal_counter_ = 0;
};

}  // namespace bento::tee
