// Enclave Page Cache accounting (paper §7.3, "Scalability of Browser").
//
// SGX v1 exposes 128 MiB of protected memory of which ~93 MiB is usable by
// applications [34]. Enclaves whose working sets exceed the resident budget
// are paged, which SGX supports but at a cost. This manager reproduces the
// budget and counts paging events so the scalability benchmark can show
// how many concurrent functions fit before paging starts.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>

namespace bento::tee {

inline constexpr std::size_t kEpcTotalBytes = 128ull << 20;
inline constexpr std::size_t kEpcUsableBytes = 93ull << 20;  // per [34]
inline constexpr std::size_t kEpcPageBytes = 4096;

class EpcExhausted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class EpcManager {
 public:
  explicit EpcManager(std::size_t usable_bytes = kEpcUsableBytes)
      : usable_(usable_bytes) {}

  /// Registers an enclave's committed memory. Throws EpcExhausted only if a
  /// single allocation exceeds the whole EPC (cannot even page).
  void allocate(std::uint64_t enclave_id, std::size_t bytes);
  void free(std::uint64_t enclave_id);

  /// Total committed bytes across enclaves (may exceed usable -> paging).
  std::size_t committed() const { return committed_; }
  std::size_t usable() const { return usable_; }
  bool paging() const { return committed_ > usable_; }
  /// Bytes currently paged out to (encrypted) main memory.
  std::size_t paged_out_bytes() const {
    return committed_ > usable_ ? committed_ - usable_ : 0;
  }
  /// Number of enclaves whose pages are resident vs total.
  std::size_t enclave_count() const { return allocations_.size(); }

  /// Cumulative page-fault events charged (one per 4 KiB crossing the
  /// resident boundary when allocations change).
  std::uint64_t page_faults() const { return page_faults_; }

  /// Chaos hook: charge the faults of `bytes` of working set being evicted
  /// and re-touched (EPC thrash), without changing any allocation. Models a
  /// hostile co-tenant blowing the cache.
  void thrash(std::size_t bytes) {
    page_faults_ += (bytes + kEpcPageBytes - 1) / kEpcPageBytes;
  }

 private:
  std::size_t usable_;
  std::size_t committed_ = 0;
  std::uint64_t page_faults_ = 0;
  std::map<std::uint64_t, std::size_t> allocations_;
};

}  // namespace bento::tee
