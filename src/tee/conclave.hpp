// Conclaves: "containers of enclaves" [34] (paper §5.4), plus the two
// building blocks Bento relies on:
//
//   * FsProtect   — an enclaved filesystem that generates an *ephemeral*
//                   encryption key at launch and encrypts every write, so
//                   the operator only ever stores ciphertext (the paper's
//                   plausible-deniability argument, §6.2);
//   * SecureChannel — the attested TLS-style channel a Bento client opens
//                   to the function loader *inside* the conclave before
//                   uploading its function (§5.4: "the Bento client attests
//                   the container's image and establishes a secure TLS
//                   channel to the container's function loader").
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/aead.hpp"
#include "crypto/dh.hpp"
#include "store/sealer.hpp"
#include "tee/attestation.hpp"
#include "tee/enclave.hpp"
#include "tee/epc.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace bento::tee {

/// Encrypted, integrity-protected filesystem living in its own enclave.
/// The key is ephemeral: it is generated at launch, never sealed, never
/// exported — when the conclave dies the data is gone for everyone.
class FsProtect {
 public:
  explicit FsProtect(util::Rng& rng);

  void write(const std::string& path, util::ByteView data);
  /// nullopt if absent (or if ciphertext was tampered with on disk).
  std::optional<util::Bytes> read(const std::string& path) const;
  bool remove(const std::string& path);
  std::vector<std::string> list() const;
  bool exists(const std::string& path) const { return files_.contains(path); }

  /// Plaintext bytes stored (for resource accounting).
  std::size_t total_plaintext_bytes() const { return plaintext_bytes_; }

  /// What the *operator* can observe: ciphertext only.
  const util::Bytes& ciphertext_of(const std::string& path) const;

  /// Operator-side tampering hook for tests: corrupts stored ciphertext.
  void corrupt(const std::string& path, std::size_t byte_index);

 private:
  crypto::AeadKey key_;
  std::uint64_t write_counter_ = 0;
  struct Entry {
    util::Bytes ciphertext;
    std::uint64_t nonce_counter;
    std::size_t plaintext_size;
  };
  std::map<std::string, Entry> files_;
  std::size_t plaintext_bytes_ = 0;
};

/// One half of an attested, AEAD-protected session. The server side binds
/// its handshake to an enclave quote (report_data = H(transcript)), which
/// the client checks before sending anything sensitive.
class SecureChannel {
 public:
  struct Hello {
    crypto::Gp dh_public = 0;
    util::Bytes to_bytes() const;
    static Hello from_bytes(util::ByteView b);
  };
  struct Accept {
    crypto::Gp dh_public = 0;
    Quote quote;  // report_data binds both DH publics
    util::Bytes to_bytes() const;
    static Accept from_bytes(util::ByteView b);
  };

  /// Client step 1.
  static Hello client_hello(crypto::DhKeyPair& ephemeral, util::Rng& rng);
  /// Server step: consumes the hello, emits Accept, returns the session.
  static SecureChannel server_accept(const Hello& hello, const Enclave& enclave,
                                     util::Rng& rng, Accept* out);
  /// Client step 2: verifies the quote binding + measurement, derives keys.
  /// expected_measurement guards against a different image answering.
  static std::optional<SecureChannel> client_finish(
      const crypto::DhKeyPair& ephemeral, const Accept& accept,
      const Measurement& expected_measurement);

  /// RFC 8439 ChaCha20-Poly1305 with per-direction sequence numbers.
  util::Bytes seal(util::ByteView plaintext);
  std::optional<util::Bytes> open(util::ByteView sealed);

 private:
  SecureChannel(crypto::ChaChaKey send_key, crypto::ChaChaKey recv_key);
  crypto::ChaChaKey send_key_;
  crypto::ChaChaKey recv_key_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
};

/// A conclave: runtime enclave + FsProtect, registered against the EPC.
class Conclave {
 public:
  /// `runtime_image` is the code whose measurement clients attest (the
  /// Bento execution environment, NOT individual functions — §5.4).
  Conclave(Platform& platform, EpcManager& epc, util::ByteView runtime_image,
           const std::string& name, util::Rng& rng);
  ~Conclave();

  Conclave(const Conclave&) = delete;
  Conclave& operator=(const Conclave&) = delete;

  const Enclave& runtime() const { return runtime_; }
  FsProtect& fs() { return fs_; }
  const FsProtect& fs() const { return fs_; }

  /// Updates the EPC accounting for this conclave's working set.
  void set_memory_bytes(std::size_t bytes);
  std::size_t memory_bytes() const { return runtime_.memory_bytes(); }

  /// Sealer for this conclave's persistent blob store: keys derive from the
  /// platform sealing secret and the runtime measurement, same contract as
  /// Enclave::seal. Unlike FsProtect's ephemeral key, the derivation is
  /// stable across restarts *of the same image on the same platform* — the
  /// restart hook that makes crash-consistent recovery possible at all,
  /// while anyone without the platform+measurement pair (no attestation)
  /// derives garbage and replay fails closed.
  std::unique_ptr<store::Sealer> store_sealer(const std::string& store_name) const;

  /// Baseline conclave memory overhead measured in [34] (§7.3: 7.3 MB).
  static constexpr std::size_t kBaselineOverheadBytes = 7'300'000;

 private:
  static std::uint64_t next_id();
  std::uint64_t id_;
  EpcManager& epc_;
  Enclave runtime_;
  FsProtect fs_;
};

/// Free-standing store-sealer derivation: the server-level recovery path
/// (BentoServer::recover_stores) replays durable stores on node restart
/// *before* any conclave is respawned, so it derives the key the same way a
/// future conclave of `measurement` on `platform` would.
std::unique_ptr<store::Sealer> make_store_sealer(const Platform& platform,
                                                 const Measurement& measurement,
                                                 const std::string& store_name);

}  // namespace bento::tee
