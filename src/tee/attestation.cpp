#include "tee/attestation.hpp"

#include "crypto/hmac.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/serialize.hpp"

namespace bento::tee {

util::Bytes Quote::mac_input() const {
  util::Writer w;
  w.raw(util::ByteView(measurement.data(), measurement.size()));
  w.blob(report_data);
  w.u64(platform_id);
  w.u32(tcb_version);
  return std::move(w).take();
}

util::Bytes Quote::serialize() const {
  util::Writer w;
  w.raw(util::ByteView(measurement.data(), measurement.size()));
  w.blob(report_data);
  w.u64(platform_id);
  w.u32(tcb_version);
  w.raw(util::ByteView(mac.data(), mac.size()));
  return std::move(w).take();
}

Quote Quote::deserialize(util::ByteView data) {
  util::Reader r(data);
  Quote q;
  util::Bytes m = r.raw(32);
  std::copy(m.begin(), m.end(), q.measurement.begin());
  q.report_data = r.blob();
  q.platform_id = r.u64();
  q.tcb_version = r.u32();
  util::Bytes mac = r.raw(32);
  std::copy(mac.begin(), mac.end(), q.mac.begin());
  r.expect_done();
  return q;
}

Quote generate_quote(const Enclave& enclave, util::ByteView report_data) {
  Quote q;
  q.measurement = enclave.measurement();
  q.report_data = util::Bytes(report_data.begin(), report_data.end());
  const Platform& platform = enclave.platform();
  q.platform_id = platform.platform_id();
  q.tcb_version = platform.tcb_version();
  q.mac = crypto::hmac_sha256(platform.attestation_key(), q.mac_input());
  return q;
}

util::Bytes AttestationReport::signed_body() const {
  util::Writer w;
  w.blob(quote.serialize());
  w.u8(static_cast<std::uint8_t>(tcb_status));
  w.u64(timestamp_micros);
  return std::move(w).take();
}

bool AttestationReport::verify(crypto::Gp ias_public_key) const {
  return crypto::verify(ias_public_key, signed_body(), signature);
}

util::Bytes AttestationReport::serialize() const {
  util::Writer w;
  w.blob(signed_body());
  w.raw(signature.to_bytes());
  return std::move(w).take();
}

AttestationReport AttestationReport::deserialize(util::ByteView data) {
  util::Reader outer(data);
  const util::Bytes body = outer.blob();
  const util::Bytes sig = outer.raw(2 * crypto::kGpBytes);
  outer.expect_done();

  util::Reader r(body);
  AttestationReport report;
  report.quote = Quote::deserialize(r.blob());
  report.tcb_status = static_cast<TcbStatus>(r.u8());
  report.timestamp_micros = r.u64();
  r.expect_done();
  report.signature = crypto::Signature::from_bytes(sig);
  return report;
}

void IntelAttestationService::provision(const Platform& platform) {
  platform_keys_[platform.platform_id()] = platform.attestation_key();
}

namespace {
// Per-round telemetry for the attestation service; verify_quote is const so
// the handles live here rather than on the instance.
void note_attest_round(const Quote& quote, bool ok) {
  static obs::Counter rounds = obs::registry().counter("tee.attest_rounds");
  static obs::Counter failures = obs::registry().counter("tee.attest_failures");
  rounds.inc();
  if (!ok) failures.inc();
  obs::trace(obs::Ev::TeeAttest, static_cast<std::uint32_t>(quote.platform_id),
             quote.tcb_version, ok);
}
}  // namespace

std::optional<AttestationReport> IntelAttestationService::verify_quote(
    const Quote& quote, std::uint64_t now_micros) const {
  auto it = platform_keys_.find(quote.platform_id);
  if (it == platform_keys_.end()) {
    note_attest_round(quote, false);
    return std::nullopt;
  }
  const crypto::Digest expect = crypto::hmac_sha256(it->second, quote.mac_input());
  if (!util::ct_equal(util::ByteView(expect.data(), expect.size()),
                      util::ByteView(quote.mac.data(), quote.mac.size()))) {
    note_attest_round(quote, false);
    return std::nullopt;
  }
  note_attest_round(quote, true);
  AttestationReport report;
  report.quote = quote;
  report.tcb_status =
      quote.tcb_version >= current_tcb_ ? TcbStatus::UpToDate : TcbStatus::OutOfDate;
  report.timestamp_micros = now_micros;
  report.signature = key_.sign(report.signed_body());
  return report;
}

}  // namespace bento::tee
