#include "tee/conclave.hpp"

#include <cstring>
#include <stdexcept>

#include "crypto/hmac.hpp"
#include "crypto/poly1305.hpp"
#include "crypto/sha256.hpp"
#include "util/serialize.hpp"

namespace bento::tee {

FsProtect::FsProtect(util::Rng& rng)
    : key_(crypto::AeadKey::from_bytes(rng.bytes(crypto::kAeadKeyLen))) {}

void FsProtect::write(const std::string& path, util::ByteView data) {
  const std::uint64_t counter = ++write_counter_;
  Entry entry;
  entry.nonce_counter = counter;
  entry.plaintext_size = data.size();
  entry.ciphertext = crypto::aead_seal(key_, crypto::nonce_from_counter(counter),
                                       util::to_bytes(path), data);
  auto it = files_.find(path);
  if (it != files_.end()) {
    plaintext_bytes_ -= it->second.plaintext_size;
    it->second = std::move(entry);
  } else {
    files_[path] = std::move(entry);
  }
  plaintext_bytes_ += data.size();
}

std::optional<util::Bytes> FsProtect::read(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return crypto::aead_open(key_, crypto::nonce_from_counter(it->second.nonce_counter),
                           util::to_bytes(path), it->second.ciphertext);
}

bool FsProtect::remove(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) return false;
  plaintext_bytes_ -= it->second.plaintext_size;
  files_.erase(it);
  return true;
}

std::vector<std::string> FsProtect::list() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, entry] : files_) out.push_back(path);
  return out;
}

const util::Bytes& FsProtect::ciphertext_of(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) throw std::out_of_range("FsProtect: no such file");
  return it->second.ciphertext;
}

void FsProtect::corrupt(const std::string& path, std::size_t byte_index) {
  auto it = files_.find(path);
  if (it == files_.end()) throw std::out_of_range("FsProtect: no such file");
  it->second.ciphertext.at(byte_index) ^= 0x01;
}

// ---- SecureChannel ----

util::Bytes SecureChannel::Hello::to_bytes() const {
  return crypto::gp_to_bytes(dh_public);
}

SecureChannel::Hello SecureChannel::Hello::from_bytes(util::ByteView b) {
  return Hello{crypto::gp_from_bytes(b)};
}

util::Bytes SecureChannel::Accept::to_bytes() const {
  util::Writer w;
  w.raw(crypto::gp_to_bytes(dh_public));
  w.blob(quote.serialize());
  return std::move(w).take();
}

SecureChannel::Accept SecureChannel::Accept::from_bytes(util::ByteView b) {
  util::Reader r(b);
  Accept a;
  a.dh_public = crypto::gp_from_bytes(r.raw(crypto::kGpBytes));
  a.quote = Quote::deserialize(r.blob());
  r.expect_done();
  return a;
}

namespace {
util::Bytes transcript_hash(crypto::Gp client_pub, crypto::Gp server_pub) {
  util::Writer w;
  w.raw(crypto::gp_to_bytes(client_pub));
  w.raw(crypto::gp_to_bytes(server_pub));
  return crypto::sha256_bytes(w.data());
}

std::pair<crypto::ChaChaKey, crypto::ChaChaKey> derive_keys(
    util::ByteView shared, util::ByteView transcript) {
  const util::Bytes material =
      crypto::hkdf(shared, transcript, "bento-secure-channel", 64);
  crypto::ChaChaKey client_key{}, server_key{};
  std::memcpy(client_key.data(), material.data(), 32);
  std::memcpy(server_key.data(), material.data() + 32, 32);
  return {client_key, server_key};
}
}  // namespace

SecureChannel::SecureChannel(crypto::ChaChaKey send_key, crypto::ChaChaKey recv_key)
    : send_key_(send_key), recv_key_(recv_key) {}

SecureChannel::Hello SecureChannel::client_hello(crypto::DhKeyPair& ephemeral,
                                                 util::Rng& rng) {
  ephemeral = crypto::DhKeyPair::generate(rng);
  return Hello{ephemeral.public_value};
}

SecureChannel SecureChannel::server_accept(const Hello& hello, const Enclave& enclave,
                                           util::Rng& rng, Accept* out) {
  const crypto::DhKeyPair eph = crypto::DhKeyPair::generate(rng);
  const util::Bytes shared = crypto::dh_shared(eph, hello.dh_public);
  const util::Bytes transcript = transcript_hash(hello.dh_public, eph.public_value);
  auto [client_key, server_key] = derive_keys(shared, transcript);

  out->dh_public = eph.public_value;
  out->quote = generate_quote(enclave, transcript);
  // Server sends on server_key, receives on client_key.
  return SecureChannel(server_key, client_key);
}

std::optional<SecureChannel> SecureChannel::client_finish(
    const crypto::DhKeyPair& ephemeral, const Accept& accept,
    const Measurement& expected_measurement) {
  const util::Bytes transcript =
      transcript_hash(ephemeral.public_value, accept.dh_public);
  if (accept.quote.report_data != transcript) return std::nullopt;
  if (accept.quote.measurement != expected_measurement) return std::nullopt;
  util::Bytes shared;
  try {
    shared = crypto::dh_shared(ephemeral, accept.dh_public);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  auto [client_key, server_key] = derive_keys(shared, transcript);
  return SecureChannel(client_key, server_key);
}

util::Bytes SecureChannel::seal(util::ByteView plaintext) {
  return crypto::chapoly_seal(send_key_, crypto::nonce_from_counter(++send_seq_), {},
                              plaintext);
}

std::optional<util::Bytes> SecureChannel::open(util::ByteView sealed) {
  auto out = crypto::chapoly_open(recv_key_,
                                  crypto::nonce_from_counter(recv_seq_ + 1), {},
                                  sealed);
  if (out.has_value()) ++recv_seq_;
  return out;
}

// ---- Conclave ----

std::uint64_t Conclave::next_id() {
  static std::uint64_t counter = 0;
  return ++counter;
}

Conclave::Conclave(Platform& platform, EpcManager& epc, util::ByteView runtime_image,
                   const std::string& name, util::Rng& rng)
    : id_(next_id()), epc_(epc), runtime_(platform, runtime_image, name), fs_(rng) {
  epc_.allocate(id_, kBaselineOverheadBytes);
  runtime_.set_memory_bytes(kBaselineOverheadBytes);
}

Conclave::~Conclave() { epc_.free(id_); }

void Conclave::set_memory_bytes(std::size_t bytes) {
  const std::size_t total = bytes + kBaselineOverheadBytes;
  epc_.allocate(id_, total);
  runtime_.set_memory_bytes(total);
}

std::unique_ptr<store::Sealer> Conclave::store_sealer(
    const std::string& store_name) const {
  return make_store_sealer(runtime_.platform(), runtime_.measurement(), store_name);
}

std::unique_ptr<store::Sealer> make_store_sealer(const Platform& platform,
                                                 const Measurement& measurement,
                                                 const std::string& store_name) {
  // Same shape as Enclave::sealing_key (HKDF over the platform sealing
  // secret, salted by the measurement) with a per-store info label, so each
  // named store gets an independent ChaCha20-Poly1305 key bound to exactly
  // the (platform, image) pair attestation vouches for.
  const util::Bytes okm = crypto::hkdf(
      platform.sealing_secret(),
      util::ByteView(measurement.data(), measurement.size()),
      "bento-store-seal:" + store_name, 32);
  crypto::ChaChaKey key{};
  std::memcpy(key.data(), okm.data(), key.size());
  return store::make_chapoly_sealer(key);
}

}  // namespace bento::tee
