// Scenario builder: assembles a complete simulated Tor network (relays,
// directory, consensus, clearnet servers) in a few lines. Shared by the
// test suite, the benchmark harnesses, and the examples.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "tor/directory.hpp"
#include "tor/internet.hpp"
#include "tor/proxy.hpp"
#include "tor/router.hpp"

namespace bento::tor {

struct TestbedOptions {
  std::uint64_t seed = 7;
  int guards = 3;
  int middles = 4;
  int exits = 3;
  /// Relay access-link bandwidth (bytes/sec).
  double relay_bandwidth = 2e6;
  /// Propagation latencies are uniform in [min,max].
  util::Duration min_latency = util::Duration::millis(10);
  util::Duration max_latency = util::Duration::millis(45);
  /// Exit policy applied to exit relays.
  std::string exit_policy = "accept *:*";
  /// Mark all relays as Bento-capable.
  bool all_bento = false;
  /// Serialized middlebox node policy advertised in descriptors (paper
  /// §5.5 dissemination); applied when all_bento is set.
  util::Bytes bento_policy;
};

class Testbed {
 public:
  explicit Testbed(const TestbedOptions& options = {});

  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return net_; }
  Internet& internet() { return internet_; }
  DirectoryAuthority& directory() { return dir_; }
  const Consensus& consensus() const { return consensus_; }
  util::Rng& rng() { return rng_; }

  /// Adds one relay before finalize(); returns its index.
  std::size_t add_relay(const RelayConfig& config);
  Router& router(std::size_t index) { return *routers_[index]; }
  std::size_t router_count() const { return routers_.size(); }
  Router* router_by_fingerprint(const std::string& fp);

  /// Publishes descriptors, signs the consensus, wires it into every relay.
  /// Must be called exactly once before creating proxies.
  void finalize();

  /// Creates a client proxy node (after finalize()).
  std::unique_ptr<OnionProxy> make_client(const std::string& name,
                                          double bandwidth = 1.25e6);

  /// Registers a clearnet web server at `addr`; returns the owning pointer
  /// holder index. Latencies to it follow the testbed distribution.
  WebServer& add_web_server(Addr addr, WebServer::ContentFn content,
                            double bandwidth = 12.5e6);

  /// Runs the simulation until quiescent (or the event limit).
  void run(std::uint64_t max_events = 50'000'000) { sim_.run(max_events); }
  void run_for(util::Duration d) { sim_.run_until(sim_.now() + d); }

 private:
  void assign_latencies(sim::NodeId node);

  TestbedOptions options_;
  sim::Simulator sim_;
  sim::Network net_;
  Internet internet_;
  util::Rng rng_;
  DirectoryAuthority dir_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<WebServer>> web_servers_;
  Consensus consensus_;
  bool finalized_ = false;
  int next_addr_block_ = 1;
};

}  // namespace bento::tor
