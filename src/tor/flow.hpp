// Tor flow control constants (tor-spec §7.3/7.4) and a byte queue used by
// stream endpoints to buffer data awaiting window credit.
//
// Windows are counted in RELAY_DATA cells. Each endpoint starts with the
// init window, decrements as it packages cells, and stops when it reaches
// zero; the receiving edge returns a SENDME for every `increment` cells it
// delivers, crediting the window.
#pragma once

#include <cstddef>
#include <deque>

#include "util/bytes.hpp"

namespace bento::tor {

inline constexpr int kStreamWindowInit = 500;
inline constexpr int kStreamWindowIncrement = 50;
inline constexpr int kCircuitWindowInit = 1000;
inline constexpr int kCircuitWindowIncrement = 100;

/// FIFO byte buffer with segment storage; pop() re-chunks to cell size.
class ByteQueue {
 public:
  void push(util::ByteView data);
  /// Pops up to max_len bytes (less only if the queue is shorter).
  util::Bytes pop(std::size_t max_len);
  bool empty() const { return total_ == 0; }
  std::size_t size() const { return total_; }

 private:
  std::deque<util::Bytes> segments_;
  std::size_t head_offset_ = 0;  // consumed prefix of segments_.front()
  std::size_t total_ = 0;
};

}  // namespace bento::tor
