// The Tor relay (onion router).
//
// A Router terminates one onion layer per circuit through it and plays
// whichever roles the cells ask of it: middle (forwarding), exit (clearnet
// streams via the TCP-like Internet), introduction point, rendezvous point,
// and — for Bento — host of local applications reachable through streams to
// the relay's own address (the paper's "exit node policy to connect to the
// Bento server via localhost", §5).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "crypto/dh.hpp"
#include "crypto/sign.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "tor/cell.hpp"
#include "tor/directory.hpp"
#include "tor/exitpolicy.hpp"
#include "tor/flow.hpp"
#include "tor/internet.hpp"
#include "tor/relaycrypto.hpp"
#include "util/rng.hpp"

namespace bento::tor {

class Router;

/// Server-side endpoint of a Tor stream terminating at a local application
/// on this relay (e.g. the Bento server). Owned by the Router; pointers
/// stay valid until on_end fires or the router destroys the circuit.
class EdgeStream {
 public:
  StreamId id() const { return id_; }
  /// Queues data toward the circuit origin (chunked, window-limited).
  void send(util::ByteView data);
  /// Sends RELAY_END once buffered data drains.
  void end();

  void set_on_data(std::function<void(util::ByteView)> fn) { on_data_ = std::move(fn); }
  void set_on_end(std::function<void()> fn) { on_end_ = std::move(fn); }

 private:
  friend class Router;
  Router* router_ = nullptr;
  std::pair<sim::NodeId, CircId> circ_key_{};
  StreamId id_ = 0;
  std::function<void(util::ByteView)> on_data_;
  std::function<void()> on_end_;
};

/// Application bound to a port on the relay host (the Bento server binds
/// one). Streams to (relay addr, port) are delivered here instead of the
/// clearnet.
class LocalApp {
 public:
  virtual ~LocalApp() = default;
  /// Return false to refuse the stream (client sees RELAY_END).
  virtual bool on_stream_open(EdgeStream& stream) = 0;
};

struct RelayConfig {
  std::string nickname;
  Addr addr = 0;
  Port or_port = 9001;
  double bandwidth = 1.25e6;  // consensus weight (bytes/sec)
  RelayFlags flags;
  ExitPolicy exit_policy = ExitPolicy::reject_all();
  util::Bytes bento_policy;
  double up_bytes_per_sec = 1.25e6;
  double down_bytes_per_sec = 1.25e6;
};

class Router : public sim::MessageHandler {
 public:
  Router(sim::Simulator& sim, sim::Network& net, Internet& internet,
         const RelayConfig& config, util::Rng rng);

  const RelayDescriptor& descriptor() const { return descriptor_; }
  std::string fingerprint() const { return descriptor_.fingerprint(); }
  sim::NodeId node() const { return node_; }
  Addr addr() const { return descriptor_.addr; }

  /// Uploads the self-signed descriptor.
  void publish(DirectoryAuthority& authority) const { authority.upload(descriptor_); }

  /// Consensus pointer used to resolve EXTEND targets; must outlive the
  /// router or be replaced before further use.
  void set_consensus(const Consensus* consensus) { consensus_ = consensus; }

  /// Binds/unbinds a local application to a port on this relay's host.
  void bind_local_app(Port port, LocalApp* app);
  void unbind_local_app(Port port);

  /// Direct clearnet access for local apps (Bento functions). Returns false
  /// if the address is unknown. The caller is responsible for policy checks
  /// (the Bento sandbox netfilter does them).
  bool open_clearnet(const Endpoint& to, TcpClient::Callbacks cbs,
                     std::uint64_t* conn_out);
  void clearnet_send(std::uint64_t conn, util::ByteView data);
  void clearnet_close(std::uint64_t conn);

  void on_message(sim::NodeId from, util::Bytes data) override;

  /// A neighboring node crashed: tear down every circuit through it,
  /// propagating DESTROY to the surviving side, and fail pending extends
  /// toward it.
  void on_peer_down(sim::NodeId peer) override;

  /// Simulates this relay crashing: drops all circuit, stream, intro and
  /// rendezvous state without sending anything (a dead process can't).
  /// Local-app streams get their on_end so hosts release edge state.
  void crash();

  struct Counters {
    std::uint64_t cells_in = 0;
    std::uint64_t cells_out = 0;
    std::uint64_t circuits_created = 0;
    std::uint64_t streams_opened = 0;
    std::uint64_t cells_dropped = 0;  // DROP (cover) cells absorbed here
  };
  const Counters& counters() const { return counters_; }

 private:
  using Key = std::pair<sim::NodeId, CircId>;

  struct StreamState {
    bool is_local = false;
    std::unique_ptr<EdgeStream> app_stream;  // when is_local
    std::uint64_t tcp_conn = 0;              // when clearnet
    bool connected = false;
    int package_window = kStreamWindowInit;  // DATA cells we may send back
    int delivered = 0;                       // since last stream SENDME
    ByteQueue outbuf;                        // toward the origin
    bool end_after_flush = false;
    bool remote_ended = false;
  };

  struct Circuit {
    sim::NodeId prev_peer = sim::kInvalidNode;
    CircId prev_id = 0;
    std::optional<Key> next;
    std::unique_ptr<LayerCrypto> crypto;
    std::map<StreamId, StreamState> streams;
    std::optional<Key> spliced;  // rendezvous mate circuit
    int circ_package_window = kCircuitWindowInit;
    int circ_delivered = 0;
    util::Bytes intro_auth;   // non-empty on a service intro circuit
    util::Bytes rend_cookie;  // non-empty on a waiting rendezvous circuit
  };

  void handle_cell(sim::NodeId from, const Cell& cell);
  void handle_create(sim::NodeId from, const Cell& cell);
  void handle_created(sim::NodeId from, const Cell& cell);
  void handle_relay(sim::NodeId from, const Cell& cell);
  void handle_destroy(sim::NodeId from, const Cell& cell);
  void handle_recognized(const Key& key, Circuit& circ, const RelayCell& rc);

  // Relay command handlers (cell recognized at this hop).
  void on_extend(const Key& key, Circuit& circ, const RelayCell& rc);
  void on_begin(const Key& key, Circuit& circ, const RelayCell& rc);
  void on_data(const Key& key, Circuit& circ, const RelayCell& rc);
  void on_end(const Key& key, Circuit& circ, const RelayCell& rc);
  void on_sendme(const Key& key, Circuit& circ, const RelayCell& rc);
  void on_establish_intro(const Key& key, Circuit& circ, const RelayCell& rc);
  void on_introduce1(const Key& key, Circuit& circ, const RelayCell& rc);
  void on_establish_rendezvous(const Key& key, Circuit& circ, const RelayCell& rc);
  void on_rendezvous1(const Key& key, Circuit& circ, const RelayCell& rc);

  /// Seals+encrypts a relay cell at our layer and sends it toward the
  /// origin of `circ`.
  void send_backward(const Key& key, Circuit& circ, RelayCell rc);
  /// Forwards an already-layered payload toward the origin (splice path).
  void send_backward_raw(const Key& key, Circuit& circ,
                         std::array<std::uint8_t, kCellPayloadLen> payload);
  void send_cell(sim::NodeId to, const Cell& cell);

  /// Pumps buffered stream data into DATA cells while windows allow.
  void pump_stream(const Key& key, Circuit& circ, StreamId sid);
  void stream_deliver_backward(const Key& key, StreamId sid, util::ByteView data);
  void stream_end_backward(const Key& key, StreamId sid);

  void destroy_circuit(const Key& key, bool notify_prev, bool notify_next);

  Circuit* find_circuit(const Key& key);

  sim::Simulator& sim_;
  sim::Network& net_;
  Internet& internet_;
  util::Rng rng_;
  crypto::SigningKey identity_;
  crypto::DhKeyPair onion_key_;
  RelayDescriptor descriptor_;
  sim::NodeId node_;
  const Consensus* consensus_ = nullptr;

  std::map<Key, std::shared_ptr<Circuit>> circuits_;  // both sides keyed
  std::map<Key, Key> pending_extend_;                 // next-key -> prev-key
  std::map<sim::NodeId, CircId> next_circ_id_;        // per-peer allocator
  std::map<util::Bytes, Key> intro_points_;           // auth key -> circuit
  std::map<util::Bytes, Key> rend_points_;            // cookie -> circuit
  std::map<Port, LocalApp*> local_apps_;
  TcpClient tcp_;
  Counters counters_;

  friend class EdgeStream;  // facade over stream_deliver/end_backward
};

}  // namespace bento::tor
