#include "tor/internet.hpp"

#include "util/serialize.hpp"

namespace bento::tor {

void Internet::register_server(Addr addr, sim::NodeId node) { servers_[addr] = node; }

std::optional<sim::NodeId> Internet::resolve(Addr addr) const {
  auto it = servers_.find(addr);
  if (it == servers_.end()) return std::nullopt;
  return it->second;
}

util::Bytes TcpMsg::pack() const {
  util::Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(conn_id);
  w.u16(dst_port);
  w.blob(payload);
  return std::move(w).take();
}

TcpMsg TcpMsg::unpack(util::ByteView wire) {
  util::Reader r(wire);
  TcpMsg m;
  m.type = static_cast<TcpMsgType>(r.u8());
  m.conn_id = r.u64();
  m.dst_port = r.u16();
  m.payload = r.blob();
  r.expect_done();
  return m;
}

std::uint64_t TcpClient::open(sim::NodeId server, Port port, Callbacks cbs) {
  const std::uint64_t id = next_id_++;
  conns_[id] = Conn{server, std::move(cbs), false};
  TcpMsg m;
  m.type = TcpMsgType::Open;
  m.conn_id = id;
  m.dst_port = port;
  net_.send(node_, server, m.pack());
  return id;
}

void TcpClient::send(std::uint64_t conn_id, util::ByteView data) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  TcpMsg m;
  m.type = TcpMsgType::Data;
  m.conn_id = conn_id;
  m.payload = util::Bytes(data.begin(), data.end());
  net_.send(node_, it->second.server, m.pack());
}

void TcpClient::close(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  TcpMsg m;
  m.type = TcpMsgType::End;
  m.conn_id = conn_id;
  net_.send(node_, it->second.server, m.pack());
  conns_.erase(it);
}

void TcpClient::on_message(sim::NodeId from, const TcpMsg& msg) {
  auto it = conns_.find(msg.conn_id);
  if (it == conns_.end() || it->second.server != from) return;
  Conn& conn = it->second;
  switch (msg.type) {
    case TcpMsgType::OpenAck:
      conn.open = true;
      if (conn.cbs.on_open) conn.cbs.on_open();
      break;
    case TcpMsgType::Data:
      if (conn.cbs.on_data) conn.cbs.on_data(msg.payload);
      break;
    case TcpMsgType::End: {
      auto cb = std::move(conn.cbs.on_end);
      conns_.erase(it);
      if (cb) cb();
      break;
    }
    case TcpMsgType::Open:
      break;  // servers never Open toward clients
  }
}

void TcpServer::on_message(sim::NodeId from, util::Bytes data) {
  const TcpMsg msg = TcpMsg::unpack(data);
  const ConnKey conn{from, msg.conn_id};
  switch (msg.type) {
    case TcpMsgType::Open: {
      TcpMsg ack;
      ack.type = TcpMsgType::OpenAck;
      ack.conn_id = msg.conn_id;
      net_.send(node(), from, ack.pack());
      on_conn_open(conn, msg.dst_port);
      break;
    }
    case TcpMsgType::Data:
      on_conn_data(conn, msg.payload);
      break;
    case TcpMsgType::End:
      on_conn_end(conn);
      break;
    case TcpMsgType::OpenAck:
      break;
  }
}

void TcpServer::reply_data(const ConnKey& conn, util::Bytes data) {
  TcpMsg m;
  m.type = TcpMsgType::Data;
  m.conn_id = conn.second;
  m.payload = std::move(data);
  net_.send(node(), conn.first, m.pack());
}

void TcpServer::reply_end(const ConnKey& conn) {
  TcpMsg m;
  m.type = TcpMsgType::End;
  m.conn_id = conn.second;
  net_.send(node(), conn.first, m.pack());
}

void WebServer::set_think_time(util::Duration min, util::Duration max,
                               std::uint64_t seed) {
  think_min_ = min;
  think_max_ = max;
  think_rng_ = util::Rng(seed);
}

void WebServer::on_conn_open(const ConnKey& conn, Port) { partial_[conn]; }

void WebServer::on_conn_data(const ConnKey& conn, util::ByteView data) {
  std::string& buf = partial_[conn];
  buf.append(data.begin(), data.end());
  const auto nl = buf.find('\n');
  if (nl == std::string::npos) return;
  std::string line = buf.substr(0, nl);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  buf.erase(0, nl + 1);

  std::string path = "/";
  if (line.rfind("GET ", 0) == 0) path = line.substr(4);

  ++requests_;
  std::optional<util::Bytes> body = content_(path);
  if (!body.has_value()) {
    reply_data(conn, util::to_bytes("404 not found\n"));
    reply_end(conn);
    return;
  }

  // First byte waits out the handshake + slow-start rounds; the network
  // links then pace the chunk train at the bottleneck bandwidth. The
  // size/bandwidth term of the analytic model is intentionally *excluded*
  // here because the simulated links already impose it.
  const util::Duration rtt = net_.latency(node(), conn.first) * 2.0;
  const int rounds = tcp_params_.model_slow_start
                         ? sim::slow_start_rounds(body->size(), tcp_params_)
                         : 0;
  util::Duration first_byte_delay =
      rtt * (tcp_params_.handshake_rtts + static_cast<double>(rounds));
  if (think_max_ > think_min_) {
    const auto span = static_cast<std::uint64_t>(
        (think_max_ - think_min_).count_micros());
    first_byte_delay = first_byte_delay + think_min_ +
                       util::Duration::micros(static_cast<std::int64_t>(
                           think_rng_.uniform(0, span)));
  }

  sim_.after(first_byte_delay, [this, conn, body = std::move(*body)]() mutable {
    constexpr std::size_t kChunk = 8192;
    std::size_t off = 0;
    while (off < body.size()) {
      const std::size_t n = std::min(kChunk, body.size() - off);
      reply_data(conn, util::Bytes(body.begin() + static_cast<std::ptrdiff_t>(off),
                                   body.begin() + static_cast<std::ptrdiff_t>(off + n)));
      off += n;
    }
    reply_end(conn);
  });
}

void WebServer::on_conn_end(const ConnKey& conn) { partial_.erase(conn); }

}  // namespace bento::tor
