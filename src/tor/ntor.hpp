// ntor-style circuit handshake (tor-spec §5.1.4, over the simulation group).
//
// The client sends an ephemeral public value X; the relay, which owns a
// long-lived onion keypair (b, B) bound to its identity, replies with its
// own ephemeral Y plus an authenticator. Both sides derive the hop's
// LayerKeys from  EXP(Y,x) || EXP(B,x) || ID , so the handshake
// authenticates the relay (only the holder of b can compute EXP(X,b)).
#pragma once

#include <optional>

#include "crypto/dh.hpp"
#include "tor/relaycrypto.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace bento::tor {

inline constexpr std::size_t kNtorOnionSkinLen = crypto::kGpBytes;             // X
inline constexpr std::size_t kNtorReplyLen = crypto::kGpBytes + 32;            // Y|auth

/// Client-side handshake state kept between CREATE and CREATED.
struct NtorClientState {
  crypto::DhKeyPair ephemeral;
  crypto::Gp relay_onion_pub = 0;
  crypto::Gp relay_identity = 0;
};

/// Starts a handshake: fills `state`, returns the CREATE/EXTEND onion skin.
util::Bytes ntor_client_create(NtorClientState& state, crypto::Gp relay_onion_pub,
                               crypto::Gp relay_identity, util::Rng& rng);

struct NtorServerReply {
  util::Bytes created_payload;  // Y || auth
  LayerKeys keys;
};

/// Relay side: consumes an onion skin, returns the reply and the hop keys.
/// Throws std::invalid_argument on a malformed skin.
NtorServerReply ntor_server_respond(const crypto::DhKeyPair& onion_key,
                                    crypto::Gp identity_pub,
                                    util::ByteView onion_skin, util::Rng& rng);

/// Client side: verifies the reply; nullopt if authentication fails.
std::optional<LayerKeys> ntor_client_finish(const NtorClientState& state,
                                            util::ByteView created_payload);

}  // namespace bento::tor
