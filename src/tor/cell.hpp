// Tor cells: the fixed-size link unit of the overlay (tor-spec §3, §6).
//
// Wire layout (514 bytes total):
//   circ_id  u32
//   command  u8
//   payload  509 bytes
//
// RELAY cells carry a second header inside the (onion-encrypted) payload:
//   relay_cmd  u8
//   recognized u16   (0 when the cell is for this hop, post-decryption)
//   stream_id  u16
//   digest     u32   (running-hash check, see relaycrypto.hpp)
//   length     u16
//   data       498 bytes
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace bento::tor {

inline constexpr std::size_t kCellPayloadLen = 509;
inline constexpr std::size_t kCellLen = 514;
inline constexpr std::size_t kRelayHeaderLen = 11;
inline constexpr std::size_t kRelayDataMax = kCellPayloadLen - kRelayHeaderLen;  // 498

using CircId = std::uint32_t;
using StreamId = std::uint16_t;

enum class CellCommand : std::uint8_t {
  Padding = 0,
  Create = 1,
  Created = 2,
  Relay = 3,
  Destroy = 4,
};

enum class RelayCommand : std::uint8_t {
  Begin = 1,
  Data = 2,
  End = 3,
  Connected = 4,
  SendmeStream = 5,
  Extend = 6,
  Extended = 7,
  SendmeCircuit = 8,
  Drop = 10,  // long-range dummy; used by the Cover function
  // Hidden-service (rendezvous) commands, tor-spec §rend.
  EstablishIntro = 32,
  EstablishRendezvous = 33,
  Introduce1 = 34,
  Introduce2 = 35,
  Rendezvous1 = 36,
  Rendezvous2 = 37,
  IntroEstablished = 38,
  RendezvousEstablished = 39,
};

const char* to_string(CellCommand c);
const char* to_string(RelayCommand c);

struct Cell {
  CircId circ_id = 0;
  CellCommand command = CellCommand::Padding;
  std::array<std::uint8_t, kCellPayloadLen> payload{};

  /// Packs into the 514-byte wire form.
  util::Bytes pack() const;

  /// Unpacks; throws util::ParseError unless exactly kCellLen bytes.
  static Cell unpack(util::ByteView wire);

  /// Copies `data` into the payload (must fit); rest stays zero.
  void set_payload(util::ByteView data);
};

/// The decrypted inner header+data of a RELAY cell.
struct RelayCell {
  RelayCommand relay_cmd = RelayCommand::Data;
  std::uint16_t recognized = 0;
  StreamId stream_id = 0;
  std::uint32_t digest = 0;
  util::Bytes data;  // up to kRelayDataMax

  /// Serializes into a 509-byte payload (zero padded).
  std::array<std::uint8_t, kCellPayloadLen> pack() const;

  /// Parses a payload. Throws util::ParseError if length field is invalid.
  static RelayCell unpack(const std::array<std::uint8_t, kCellPayloadLen>& payload);
};

}  // namespace bento::tor
