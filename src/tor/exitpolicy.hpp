// Exit-node policies (paper §2.1, §5.3).
//
// A policy is an ordered list of accept/reject rules over address prefixes
// and port ranges; the first matching rule wins and an empty policy rejects
// everything. Bento compiles the co-resident relay's exit policy into the
// sandbox netfilter (src/sandbox/netfilter.hpp) so functions cannot reach
// destinations the relay itself would refuse — paper §5.3.
#pragma once

#include <string>
#include <vector>

#include "tor/address.hpp"
#include "util/bytes.hpp"

namespace bento::tor {

struct PolicyRule {
  bool accept = false;
  Addr prefix = 0;       // network byte significant bits
  int prefix_len = 0;    // 0 == "*"
  Port port_lo = 0;
  Port port_hi = 65535;

  bool matches(const Endpoint& ep) const;
  std::string to_string() const;
};

class ExitPolicy {
 public:
  ExitPolicy() = default;

  /// Parses newline- or comma-separated rules of the form
  ///   accept *:80
  ///   accept 10.2.0.0/16:443-8443
  ///   reject *:*
  /// Throws std::invalid_argument on malformed rules.
  static ExitPolicy parse(const std::string& text);

  static ExitPolicy accept_all();
  static ExitPolicy reject_all();

  /// First-match-wins; no match rejects.
  bool allows(const Endpoint& ep) const;

  /// True if some endpoint is accepted (i.e. the relay can act as an exit).
  bool allows_anything() const;

  const std::vector<PolicyRule>& rules() const { return rules_; }
  std::string to_string() const;

  util::Bytes serialize() const;
  static ExitPolicy deserialize(util::ByteView data);

 private:
  std::vector<PolicyRule> rules_;
};

}  // namespace bento::tor
