// Network addresses for the simulated Internet.
//
// Addresses are IPv4-like 32-bit values assigned by the experiment harness;
// the directory maps them to simulator NodeIds for message routing. Path
// selection uses the /16 prefix for relay-family diversity, exactly as Tor
// does.
#pragma once

#include <cstdint>
#include <string>

namespace bento::tor {

using Addr = std::uint32_t;
using Port = std::uint16_t;

struct Endpoint {
  Addr addr = 0;
  Port port = 0;
  auto operator<=>(const Endpoint&) const = default;
};

/// Parses dotted-quad ("10.1.2.3"). Throws std::invalid_argument on error.
Addr parse_addr(const std::string& dotted);

/// Formats as dotted-quad.
std::string format_addr(Addr a);

/// The /16 prefix used for path diversity.
inline std::uint32_t slash16(Addr a) { return a >> 16; }

}  // namespace bento::tor
