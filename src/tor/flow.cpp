#include "tor/flow.hpp"

#include <algorithm>

namespace bento::tor {

void ByteQueue::push(util::ByteView data) {
  if (data.empty()) return;
  segments_.emplace_back(data.begin(), data.end());
  total_ += data.size();
}

util::Bytes ByteQueue::pop(std::size_t max_len) {
  util::Bytes out;
  out.reserve(std::min(max_len, total_));
  while (out.size() < max_len && !segments_.empty()) {
    util::Bytes& front = segments_.front();
    const std::size_t avail = front.size() - head_offset_;
    const std::size_t take = std::min(avail, max_len - out.size());
    out.insert(out.end(), front.begin() + static_cast<std::ptrdiff_t>(head_offset_),
               front.begin() + static_cast<std::ptrdiff_t>(head_offset_ + take));
    head_offset_ += take;
    total_ -= take;
    if (head_offset_ == front.size()) {
      segments_.pop_front();
      head_offset_ = 0;
    }
  }
  return out;
}

}  // namespace bento::tor
