#include "tor/cell.hpp"

#include <cstring>
#include <stdexcept>

#include "util/annotations.hpp"
#include "util/serialize.hpp"

namespace bento::tor {

const char* to_string(CellCommand c) {
  switch (c) {
    case CellCommand::Padding: return "PADDING";
    case CellCommand::Create: return "CREATE";
    case CellCommand::Created: return "CREATED";
    case CellCommand::Relay: return "RELAY";
    case CellCommand::Destroy: return "DESTROY";
  }
  return "UNKNOWN";
}

const char* to_string(RelayCommand c) {
  switch (c) {
    case RelayCommand::Begin: return "BEGIN";
    case RelayCommand::Data: return "DATA";
    case RelayCommand::End: return "END";
    case RelayCommand::Connected: return "CONNECTED";
    case RelayCommand::SendmeStream: return "SENDME_STREAM";
    case RelayCommand::Extend: return "EXTEND";
    case RelayCommand::Extended: return "EXTENDED";
    case RelayCommand::SendmeCircuit: return "SENDME_CIRCUIT";
    case RelayCommand::Drop: return "DROP";
    case RelayCommand::EstablishIntro: return "ESTABLISH_INTRO";
    case RelayCommand::EstablishRendezvous: return "ESTABLISH_RENDEZVOUS";
    case RelayCommand::Introduce1: return "INTRODUCE1";
    case RelayCommand::Introduce2: return "INTRODUCE2";
    case RelayCommand::Rendezvous1: return "RENDEZVOUS1";
    case RelayCommand::Rendezvous2: return "RENDEZVOUS2";
    case RelayCommand::IntroEstablished: return "INTRO_ESTABLISHED";
    case RelayCommand::RendezvousEstablished: return "RENDEZVOUS_ESTABLISHED";
  }
  return "UNKNOWN";
}

util::Bytes Cell::pack() const {
  util::Writer w;
  w.u32(circ_id);
  w.u8(static_cast<std::uint8_t>(command));
  w.raw(payload);
  return std::move(w).take();
}

BENTO_HOT Cell Cell::unpack(util::ByteView wire) {
  if (wire.size() != kCellLen) throw util::ParseError("Cell::unpack: bad size");
  util::Reader r(wire);
  Cell c;
  c.circ_id = r.u32();
  c.command = static_cast<CellCommand>(r.u8());
  const util::ByteView body = r.view(kCellPayloadLen);
  std::memcpy(c.payload.data(), body.data(), kCellPayloadLen);
  return c;
}

void Cell::set_payload(util::ByteView data) {
  if (data.size() > kCellPayloadLen) {
    throw std::invalid_argument("Cell::set_payload: too large");
  }
  payload.fill(0);
  std::memcpy(payload.data(), data.data(), data.size());
}

BENTO_HOT std::array<std::uint8_t, kCellPayloadLen> RelayCell::pack() const {
  if (data.size() > kRelayDataMax) {
    throw std::invalid_argument("RelayCell::pack: data too large");
  }
  // Serialized straight into the fixed payload array: the relay header is
  // big-endian per tor-spec, and packing must not heap-allocate (datapath).
  std::array<std::uint8_t, kCellPayloadLen> out{};
  out[0] = static_cast<std::uint8_t>(relay_cmd);
  out[1] = static_cast<std::uint8_t>(recognized >> 8);
  out[2] = static_cast<std::uint8_t>(recognized);
  out[3] = static_cast<std::uint8_t>(stream_id >> 8);
  out[4] = static_cast<std::uint8_t>(stream_id);
  out[5] = static_cast<std::uint8_t>(digest >> 24);
  out[6] = static_cast<std::uint8_t>(digest >> 16);
  out[7] = static_cast<std::uint8_t>(digest >> 8);
  out[8] = static_cast<std::uint8_t>(digest);
  out[9] = static_cast<std::uint8_t>(data.size() >> 8);
  out[10] = static_cast<std::uint8_t>(data.size());
  if (!data.empty()) std::memcpy(out.data() + kRelayHeaderLen, data.data(), data.size());
  return out;
}

RelayCell RelayCell::unpack(const std::array<std::uint8_t, kCellPayloadLen>& payload) {
  util::Reader r(payload);
  RelayCell c;
  c.relay_cmd = static_cast<RelayCommand>(r.u8());
  c.recognized = r.u16();
  c.stream_id = r.u16();
  c.digest = r.u32();
  const std::uint16_t len = r.u16();
  if (len > kRelayDataMax) throw util::ParseError("RelayCell: bad length");
  c.data = r.raw(len);
  return c;
}

}  // namespace bento::tor
