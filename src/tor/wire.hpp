// Message framing on the simulated links.
//
// Relay<->relay and client<->guard messages carry framed cells; exit<->web
// server traffic carries raw TcpMsg frames (whose type byte is < 0x80).
// The 0xC1 marker plus exact length makes the two unambiguous at nodes that
// receive both (exit relays).
#pragma once

#include "tor/cell.hpp"
#include "util/bytes.hpp"

namespace bento::tor {

inline constexpr std::uint8_t kCellFrameMarker = 0xC1;

/// Cell -> link message.
util::Bytes frame_cell(const Cell& cell);

/// True if the message is a framed cell (vs a TcpMsg).
bool is_framed_cell(util::ByteView wire);

/// Parses a framed cell; throws util::ParseError on malformed input.
Cell unframe_cell(util::ByteView wire);

}  // namespace bento::tor
