#include "tor/relaycrypto.hpp"

#include <cstring>

#include "crypto/hmac.hpp"

namespace bento::tor {

namespace {
// Payload offsets of the relay header fields (see cell.hpp).
constexpr std::size_t kRecognizedOff = 1;
constexpr std::size_t kDigestOff = 5;
}  // namespace

LayerKeys LayerKeys::derive(util::ByteView secret, std::string_view label) {
  const util::Bytes material = crypto::hkdf(secret, {}, label, 128);
  LayerKeys k;
  std::memcpy(k.kf.data(), material.data(), 32);
  std::memcpy(k.kb.data(), material.data() + 32, 32);
  std::memcpy(k.df.data(), material.data() + 64, 32);
  std::memcpy(k.db.data(), material.data() + 96, 32);
  return k;
}

LayerCrypto::LayerCrypto(const LayerKeys& keys)
    : fwd_cipher_(keys.kf, crypto::ChaChaNonce{}),
      bwd_cipher_(keys.kb, crypto::ChaChaNonce{}) {
  fwd_digest_.update(keys.df);
  bwd_digest_.update(keys.db);
}

void LayerCrypto::crypt_forward(std::array<std::uint8_t, kCellPayloadLen>& payload) {
  util::Bytes buf(payload.begin(), payload.end());
  fwd_cipher_.process(buf);
  std::memcpy(payload.data(), buf.data(), payload.size());
}

void LayerCrypto::crypt_backward(std::array<std::uint8_t, kCellPayloadLen>& payload) {
  util::Bytes buf(payload.begin(), payload.end());
  bwd_cipher_.process(buf);
  std::memcpy(payload.data(), buf.data(), payload.size());
}

void LayerCrypto::seal(crypto::Sha256& running,
                       std::array<std::uint8_t, kCellPayloadLen>& payload) {
  // Digest field must be zero while hashing.
  std::memset(payload.data() + kDigestOff, 0, 4);
  running.update(payload);
  crypto::Sha256 snapshot = running;  // running state is copyable
  const crypto::Digest d = snapshot.finish();
  std::memcpy(payload.data() + kDigestOff, d.data(), 4);
}

bool LayerCrypto::check(crypto::Sha256& running,
                        std::array<std::uint8_t, kCellPayloadLen>& payload) {
  // Cheap pre-check: recognized field must be zero.
  if (payload[kRecognizedOff] != 0 || payload[kRecognizedOff + 1] != 0) return false;
  std::uint8_t claimed[4];
  std::memcpy(claimed, payload.data() + kDigestOff, 4);
  std::memset(payload.data() + kDigestOff, 0, 4);

  crypto::Sha256 candidate = running;
  candidate.update(payload);
  crypto::Sha256 snapshot = candidate;
  const crypto::Digest d = snapshot.finish();
  if (std::memcmp(claimed, d.data(), 4) != 0) {
    // Not ours: restore the digest field and leave the running state alone.
    std::memcpy(payload.data() + kDigestOff, claimed, 4);
    return false;
  }
  running = candidate;
  std::memcpy(payload.data() + kDigestOff, claimed, 4);
  return true;
}

void LayerCrypto::seal_forward(std::array<std::uint8_t, kCellPayloadLen>& payload) {
  seal(fwd_digest_, payload);
}

void LayerCrypto::seal_backward(std::array<std::uint8_t, kCellPayloadLen>& payload) {
  seal(bwd_digest_, payload);
}

bool LayerCrypto::check_forward(std::array<std::uint8_t, kCellPayloadLen>& payload) {
  return check(fwd_digest_, payload);
}

bool LayerCrypto::check_backward(std::array<std::uint8_t, kCellPayloadLen>& payload) {
  return check(bwd_digest_, payload);
}

}  // namespace bento::tor
