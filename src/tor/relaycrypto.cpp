#include "tor/relaycrypto.hpp"

#include <cstring>

#include "crypto/hmac.hpp"
#include "util/annotations.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace bento::tor {

namespace {
// Payload offsets of the relay header fields (see cell.hpp).
constexpr std::size_t kRecognizedOff = 1;
constexpr std::size_t kDigestOff = 5;

// Recognition outcomes on the per-cell hot path. A miss is normal for cells
// addressed to a later hop; a digest mismatch (recognized field zero but
// the running digest disagrees) is the signature of reordering/tampering.
struct RecognitionMetrics {
  obs::Counter hits = obs::registry().counter("tor.recognition.hits");
  obs::Counter misses = obs::registry().counter("tor.recognition.misses");
  obs::Counter digest_mismatches =
      obs::registry().counter("tor.recognition.digest_mismatches");
};
RecognitionMetrics& recognition_metrics() {
  static RecognitionMetrics m;
  return m;
}
}  // namespace

LayerKeys LayerKeys::derive(util::ByteView secret, std::string_view label) {
  const util::Bytes material = crypto::hkdf(secret, {}, label, 128);
  LayerKeys k;
  std::memcpy(k.kf.data(), material.data(), 32);
  std::memcpy(k.kb.data(), material.data() + 32, 32);
  std::memcpy(k.df.data(), material.data() + 64, 32);
  std::memcpy(k.db.data(), material.data() + 96, 32);
  return k;
}

LayerCrypto::LayerCrypto(const LayerKeys& keys)
    : fwd_cipher_(keys.kf, crypto::ChaChaNonce{}),
      bwd_cipher_(keys.kb, crypto::ChaChaNonce{}) {
  fwd_digest_.update(keys.df);
  bwd_digest_.update(keys.db);
}

BENTO_HOT void LayerCrypto::crypt_forward(std::array<std::uint8_t, kCellPayloadLen>& payload) {
  fwd_cipher_.process(payload);
}

BENTO_HOT void LayerCrypto::crypt_backward(std::array<std::uint8_t, kCellPayloadLen>& payload) {
  bwd_cipher_.process(payload);
}

BENTO_HOT void LayerCrypto::seal(crypto::Sha256& running,
                       std::array<std::uint8_t, kCellPayloadLen>& payload) {
  // Digest field must be zero while hashing.
  std::memset(payload.data() + kDigestOff, 0, 4);
  running.update(payload);
  // peek_digest finalizes into locals; no copy of the running state needed.
  const crypto::Digest d = running.peek_digest();
  std::memcpy(payload.data() + kDigestOff, d.data(), 4);
}

BENTO_HOT bool LayerCrypto::check(crypto::Sha256& running,
                        std::array<std::uint8_t, kCellPayloadLen>& payload) {
  RecognitionMetrics& metrics = recognition_metrics();
  // Cheap pre-check: recognized field must be zero.
  if (payload[kRecognizedOff] != 0 || payload[kRecognizedOff + 1] != 0) {
    metrics.misses.inc();
    return false;
  }
  std::uint8_t claimed[4];
  std::memcpy(claimed, payload.data() + kDigestOff, 4);
  std::memset(payload.data() + kDigestOff, 0, 4);

  // One copy only: the candidate that becomes the committed state on match.
  crypto::Sha256 candidate = running;
  candidate.update(payload);
  const crypto::Digest d = candidate.peek_digest();
  std::memcpy(payload.data() + kDigestOff, claimed, 4);
  if (std::memcmp(claimed, d.data(), 4) != 0) {
    // Not ours: payload is restored and the running state was never touched.
    metrics.misses.inc();
    metrics.digest_mismatches.inc();
    // Formatting four hex bytes per unmatched cell would dominate the relay
    // loop; the fast predicate keeps it free unless someone turned Trace on.
    if (util::log_enabled(util::LogLevel::Trace)) {
      util::log(util::LogLevel::Trace, "tor.relaycrypto",
                "recognition digest mismatch: claimed ", util::to_hex({claimed, 4}),
                " computed ", util::to_hex({d.data(), 4}));
    }
    return false;
  }
  metrics.hits.inc();
  running = candidate;
  return true;
}

BENTO_HOT void LayerCrypto::seal_forward(std::array<std::uint8_t, kCellPayloadLen>& payload) {
  seal(fwd_digest_, payload);
}

BENTO_HOT void LayerCrypto::seal_backward(std::array<std::uint8_t, kCellPayloadLen>& payload) {
  seal(bwd_digest_, payload);
}

BENTO_HOT bool LayerCrypto::check_forward(std::array<std::uint8_t, kCellPayloadLen>& payload) {
  return check(fwd_digest_, payload);
}

BENTO_HOT bool LayerCrypto::check_backward(std::array<std::uint8_t, kCellPayloadLen>& payload) {
  return check(bwd_digest_, payload);
}

}  // namespace bento::tor
