#include "tor/ntor.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"

namespace bento::tor {

namespace {
constexpr std::string_view kKeyLabel = "bento-ntor-keys";
constexpr std::string_view kVerifyLabel = "bento-ntor-verify";

util::Bytes secret_input(util::ByteView ee, util::ByteView es, crypto::Gp identity) {
  return util::concat({ee, es, crypto::gp_to_bytes(identity)});
}

crypto::Digest make_auth(util::ByteView secret, crypto::Gp x_pub, crypto::Gp y_pub,
                         crypto::Gp onion_pub, crypto::Gp identity) {
  const util::Bytes verify_key = crypto::hkdf(secret, {}, kVerifyLabel, 32);
  const util::Bytes transcript =
      util::concat({crypto::gp_to_bytes(x_pub), crypto::gp_to_bytes(y_pub),
                    crypto::gp_to_bytes(onion_pub), crypto::gp_to_bytes(identity)});
  return crypto::hmac_sha256(verify_key, transcript);
}
}  // namespace

util::Bytes ntor_client_create(NtorClientState& state, crypto::Gp relay_onion_pub,
                               crypto::Gp relay_identity, util::Rng& rng) {
  state.ephemeral = crypto::DhKeyPair::generate(rng);
  state.relay_onion_pub = relay_onion_pub;
  state.relay_identity = relay_identity;
  return crypto::gp_to_bytes(state.ephemeral.public_value);
}

NtorServerReply ntor_server_respond(const crypto::DhKeyPair& onion_key,
                                    crypto::Gp identity_pub,
                                    util::ByteView onion_skin, util::Rng& rng) {
  if (onion_skin.size() != kNtorOnionSkinLen) {
    throw std::invalid_argument("ntor: bad onion skin length");
  }
  const crypto::Gp x_pub = crypto::gp_from_bytes(onion_skin);
  const crypto::DhKeyPair eph = crypto::DhKeyPair::generate(rng);

  const util::Bytes ee = crypto::dh_shared(eph, x_pub);        // EXP(X,y)
  const util::Bytes es = crypto::dh_shared(onion_key, x_pub);  // EXP(X,b)
  const util::Bytes secret = secret_input(ee, es, identity_pub);

  NtorServerReply reply;
  reply.keys = LayerKeys::derive(secret, kKeyLabel);
  const crypto::Digest auth =
      make_auth(secret, x_pub, eph.public_value, onion_key.public_value, identity_pub);
  reply.created_payload = crypto::gp_to_bytes(eph.public_value);
  util::append(reply.created_payload, auth);
  return reply;
}

std::optional<LayerKeys> ntor_client_finish(const NtorClientState& state,
                                            util::ByteView created_payload) {
  if (created_payload.size() != kNtorReplyLen) return std::nullopt;
  crypto::Gp y_pub = 0;
  try {
    y_pub = crypto::gp_from_bytes(created_payload.first(crypto::kGpBytes));
    if (y_pub <= 1 || y_pub >= crypto::group_prime()) return std::nullopt;
    const util::Bytes ee = crypto::dh_shared(state.ephemeral, y_pub);
    const util::Bytes es = crypto::dh_shared(state.ephemeral, state.relay_onion_pub);
    const util::Bytes secret = secret_input(ee, es, state.relay_identity);
    const crypto::Digest expect =
        make_auth(secret, state.ephemeral.public_value, y_pub, state.relay_onion_pub,
                  state.relay_identity);
    if (!util::ct_equal(created_payload.subspan(crypto::kGpBytes),
                        util::ByteView(expect.data(), expect.size()))) {
      return std::nullopt;
    }
    return LayerKeys::derive(secret, kKeyLabel);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

}  // namespace bento::tor
