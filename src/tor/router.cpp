#include "tor/router.hpp"

#include <stdexcept>
#include <vector>

#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "tor/ntor.hpp"
#include "tor/wire.hpp"
#include "util/log.hpp"
#include "util/serialize.hpp"

namespace bento::tor {

namespace {
constexpr char kComponent[] = "tor.router";

// Both endpoints of a node pair allocate circuit ids; the lower NodeId uses
// the low half of the id space so allocations never collide.
CircId alloc_circ_id(CircId counter, bool low_side) {
  return low_side ? counter : (counter | 0x80000000u);
}
}  // namespace

void EdgeStream::send(util::ByteView data) {
  // Thin facade: all flow-control state lives in the Router.
  if (router_ == nullptr) return;
  router_->stream_deliver_backward(circ_key_, id_, data);
}

void EdgeStream::end() {
  if (router_ == nullptr) return;
  router_->stream_end_backward(circ_key_, id_);
}

Router::Router(sim::Simulator& sim, sim::Network& net, Internet& internet,
               const RelayConfig& config, util::Rng rng)
    : sim_(sim),
      net_(net),
      internet_(internet),
      rng_(rng),
      identity_(crypto::SigningKey::generate(rng_)),
      onion_key_(crypto::DhKeyPair::generate(rng_)),
      node_(net.add_node(
          {config.nickname, config.up_bytes_per_sec, config.down_bytes_per_sec},
          this)),
      tcp_(net, node_) {
  descriptor_.nickname = config.nickname;
  descriptor_.identity_key = identity_.public_key();
  descriptor_.onion_key = onion_key_.public_value;
  descriptor_.addr = config.addr;
  descriptor_.or_port = config.or_port;
  descriptor_.node = node_;
  descriptor_.bandwidth = config.bandwidth;
  descriptor_.flags = config.flags;
  descriptor_.exit_policy = config.exit_policy;
  descriptor_.bento_policy = config.bento_policy;
  descriptor_.sign(identity_);
}

void Router::bind_local_app(Port port, LocalApp* app) {
  if (app == nullptr) throw std::invalid_argument("bind_local_app: null app");
  local_apps_[port] = app;
}

void Router::unbind_local_app(Port port) { local_apps_.erase(port); }

bool Router::open_clearnet(const Endpoint& to, TcpClient::Callbacks cbs,
                           std::uint64_t* conn_out) {
  auto server = internet_.resolve(to.addr);
  if (!server.has_value()) return false;
  const std::uint64_t conn = tcp_.open(*server, to.port, std::move(cbs));
  if (conn_out != nullptr) *conn_out = conn;
  return true;
}

void Router::clearnet_send(std::uint64_t conn, util::ByteView data) {
  tcp_.send(conn, data);
}

void Router::clearnet_close(std::uint64_t conn) { tcp_.close(conn); }

void Router::on_message(sim::NodeId from, util::Bytes data) {
  if (is_framed_cell(data)) {
    handle_cell(from, unframe_cell(data));
    return;
  }
  // Everything else on a relay node is TCP-like clearnet traffic.
  try {
    tcp_.on_message(from, TcpMsg::unpack(data));
  } catch (const util::ParseError&) {
    util::log_warn(kComponent, descriptor_.nickname, ": unparseable message from ",
                   from);
  }
}

void Router::send_cell(sim::NodeId to, const Cell& cell) {
  ++counters_.cells_out;
  net_.send(node_, to, frame_cell(cell));
}

Router::Circuit* Router::find_circuit(const Key& key) {
  auto it = circuits_.find(key);
  return it == circuits_.end() ? nullptr : it->second.get();
}

void Router::handle_cell(sim::NodeId from, const Cell& cell) {
  ++counters_.cells_in;
  obs::trace(obs::Ev::CellRecv, cell.circ_id, node_);
  // One span per cell per hop: inert unless the cell arrived on a traced
  // request's causal chain. Zero sim-time (relay processing is modeled as
  // instantaneous), but it marks which hops the request crossed and in what
  // order, which is what bentotrace's flow arrows render.
  obs::SpanScope span(obs::Stage::RelayForward, node_);
  switch (cell.command) {
    case CellCommand::Create: handle_create(from, cell); break;
    case CellCommand::Created: handle_created(from, cell); break;
    case CellCommand::Relay: handle_relay(from, cell); break;
    case CellCommand::Destroy: handle_destroy(from, cell); break;
    case CellCommand::Padding: break;  // link padding is absorbed
  }
}

void Router::handle_create(sim::NodeId from, const Cell& cell) {
  const Key key{from, cell.circ_id};
  if (find_circuit(key) != nullptr) {
    util::log_warn(kComponent, descriptor_.nickname, ": duplicate CREATE");
    return;
  }
  util::Bytes skin(cell.payload.begin(), cell.payload.begin() + kNtorOnionSkinLen);
  NtorServerReply reply;
  try {
    reply = ntor_server_respond(onion_key_, identity_.public_key(), skin, rng_);
  } catch (const std::invalid_argument&) {
    Cell destroy;
    destroy.circ_id = cell.circ_id;
    destroy.command = CellCommand::Destroy;
    send_cell(from, destroy);
    return;
  }
  auto circ = std::make_shared<Circuit>();
  circ->prev_peer = from;
  circ->prev_id = cell.circ_id;
  circ->crypto = std::make_unique<LayerCrypto>(reply.keys);
  circuits_[key] = circ;
  ++counters_.circuits_created;

  Cell created;
  created.circ_id = cell.circ_id;
  created.command = CellCommand::Created;
  created.set_payload(reply.created_payload);
  send_cell(from, created);
}

void Router::handle_created(sim::NodeId from, const Cell& cell) {
  const Key next_key{from, cell.circ_id};
  auto pending = pending_extend_.find(next_key);
  if (pending == pending_extend_.end()) return;
  const Key prev_key = pending->second;
  pending_extend_.erase(pending);

  Circuit* circ = find_circuit(prev_key);
  if (circ == nullptr) return;
  circ->next = next_key;
  circuits_[next_key] = circuits_[prev_key];  // alias both sides

  RelayCell extended;
  extended.relay_cmd = RelayCommand::Extended;
  extended.data =
      util::Bytes(cell.payload.begin(), cell.payload.begin() + kNtorReplyLen);
  send_backward(prev_key, *circ, std::move(extended));
}

void Router::handle_relay(sim::NodeId from, const Cell& cell) {
  const Key key{from, cell.circ_id};
  Circuit* circ = find_circuit(key);
  if (circ == nullptr) return;

  const bool forward = (from == circ->prev_peer && cell.circ_id == circ->prev_id);
  auto payload = cell.payload;

  if (forward) {
    circ->crypto->crypt_forward(payload);
    if (circ->crypto->check_forward(payload)) {
      obs::trace(obs::Ev::CellRecognized, cell.circ_id, node_);
      RelayCell rc;
      try {
        rc = RelayCell::unpack(payload);
      } catch (const util::ParseError&) {
        destroy_circuit(key, true, true);
        return;
      }
      handle_recognized(key, *circ, rc);
      return;
    }
    if (circ->next.has_value()) {
      Cell out;
      out.circ_id = circ->next->second;
      out.command = CellCommand::Relay;
      out.payload = payload;
      send_cell(circ->next->first, out);
      return;
    }
    if (circ->spliced.has_value()) {
      // Rendezvous splice: inject into the mate circuit toward its origin.
      const Key mate_key = *circ->spliced;
      Circuit* mate = find_circuit(mate_key);
      if (mate != nullptr) send_backward_raw(mate_key, *mate, payload);
      return;
    }
    // Unrecognized at an edge with nowhere to go: protocol violation.
    obs::trace(obs::Ev::CellUnrecognized, cell.circ_id, node_, /*ok=*/false);
    destroy_circuit(key, true, true);
    return;
  }

  // Backward: add our layer and pass toward the origin.
  circ->crypto->crypt_backward(payload);
  Cell out;
  out.circ_id = circ->prev_id;
  out.command = CellCommand::Relay;
  out.payload = payload;
  send_cell(circ->prev_peer, out);
}

void Router::handle_recognized(const Key& key, Circuit& circ, const RelayCell& rc) {
  switch (rc.relay_cmd) {
    case RelayCommand::Extend: on_extend(key, circ, rc); break;
    case RelayCommand::Begin: on_begin(key, circ, rc); break;
    case RelayCommand::Data: on_data(key, circ, rc); break;
    case RelayCommand::End: on_end(key, circ, rc); break;
    case RelayCommand::SendmeStream:
    case RelayCommand::SendmeCircuit: on_sendme(key, circ, rc); break;
    case RelayCommand::EstablishIntro: on_establish_intro(key, circ, rc); break;
    case RelayCommand::Introduce1: on_introduce1(key, circ, rc); break;
    case RelayCommand::EstablishRendezvous:
      on_establish_rendezvous(key, circ, rc);
      break;
    case RelayCommand::Rendezvous1: on_rendezvous1(key, circ, rc); break;
    case RelayCommand::Drop:
      ++counters_.cells_dropped;  // long-range cover traffic ends here
      break;
    default:
      util::log_warn(kComponent, descriptor_.nickname, ": unexpected relay command ",
                     to_string(rc.relay_cmd));
      break;
  }
}

void Router::on_extend(const Key& key, Circuit& circ, const RelayCell& rc) {
  if (circ.next.has_value() || consensus_ == nullptr) {
    destroy_circuit(key, true, false);
    return;
  }
  std::string target_fp;
  util::Bytes skin;
  try {
    util::Reader r(rc.data);
    target_fp = r.str();
    skin = r.blob();
    r.expect_done();
  } catch (const util::ParseError&) {
    destroy_circuit(key, true, false);
    return;
  }
  const RelayDescriptor* target = consensus_->find(target_fp);
  if (target == nullptr) {
    destroy_circuit(key, true, false);
    return;
  }
  CircId& counter = next_circ_id_[target->node];
  const CircId next_id = alloc_circ_id(++counter, node_ < target->node);
  const Key next_key{target->node, next_id};
  pending_extend_[next_key] = key;

  Cell create;
  create.circ_id = next_id;
  create.command = CellCommand::Create;
  create.set_payload(skin);
  send_cell(target->node, create);
}

void Router::on_begin(const Key& key, Circuit& circ, const RelayCell& rc) {
  const StreamId sid = rc.stream_id;
  if (sid == 0 || circ.streams.contains(sid)) {
    destroy_circuit(key, true, true);
    return;
  }
  Endpoint target;
  try {
    util::Reader r(rc.data);
    target.addr = r.u32();
    target.port = r.u16();
    r.expect_done();
  } catch (const util::ParseError&) {
    destroy_circuit(key, true, true);
    return;
  }

  ++counters_.streams_opened;

  // Local application? (Bento server, policy-query function, ...)
  if (target.addr == descriptor_.addr) {
    auto app_it = local_apps_.find(target.port);
    if (app_it == local_apps_.end()) {
      RelayCell end;
      end.relay_cmd = RelayCommand::End;
      end.stream_id = sid;
      send_backward(key, circ, std::move(end));
      return;
    }
    StreamState& st = circ.streams[sid];
    st.is_local = true;
    st.connected = true;
    st.app_stream = std::make_unique<EdgeStream>();
    st.app_stream->router_ = this;
    st.app_stream->circ_key_ = key;
    st.app_stream->id_ = sid;
    if (!app_it->second->on_stream_open(*st.app_stream)) {
      circ.streams.erase(sid);
      RelayCell end;
      end.relay_cmd = RelayCommand::End;
      end.stream_id = sid;
      send_backward(key, circ, std::move(end));
      return;
    }
    RelayCell connected;
    connected.relay_cmd = RelayCommand::Connected;
    connected.stream_id = sid;
    send_backward(key, circ, std::move(connected));
    return;
  }

  // Clearnet exit: enforce this relay's exit policy.
  if (!descriptor_.exit_policy.allows(target)) {
    RelayCell end;
    end.relay_cmd = RelayCommand::End;
    end.stream_id = sid;
    send_backward(key, circ, std::move(end));
    return;
  }
  auto server = internet_.resolve(target.addr);
  if (!server.has_value()) {
    RelayCell end;
    end.relay_cmd = RelayCommand::End;
    end.stream_id = sid;
    send_backward(key, circ, std::move(end));
    return;
  }

  StreamState& st = circ.streams[sid];
  st.is_local = false;
  TcpClient::Callbacks cbs;
  cbs.on_open = [this, key, sid] {
    Circuit* c = find_circuit(key);
    if (c == nullptr) return;
    auto it = c->streams.find(sid);
    if (it == c->streams.end()) return;
    it->second.connected = true;
    RelayCell connected;
    connected.relay_cmd = RelayCommand::Connected;
    connected.stream_id = sid;
    send_backward(key, *c, std::move(connected));
  };
  cbs.on_data = [this, key, sid](util::ByteView data) {
    stream_deliver_backward(key, sid, data);
  };
  cbs.on_end = [this, key, sid] { stream_end_backward(key, sid); };
  st.tcp_conn = tcp_.open(*server, target.port, std::move(cbs));
}

void Router::on_data(const Key& key, Circuit& circ, const RelayCell& rc) {
  // Circuit-level delivery accounting (forward direction).
  circ.circ_delivered++;
  if (circ.circ_delivered % kCircuitWindowIncrement == 0) {
    RelayCell sendme;
    sendme.relay_cmd = RelayCommand::SendmeCircuit;
    send_backward(key, circ, std::move(sendme));
  }
  auto it = circ.streams.find(rc.stream_id);
  if (it == circ.streams.end()) return;
  StreamState& st = it->second;
  st.delivered++;
  if (st.delivered % kStreamWindowIncrement == 0) {
    RelayCell sendme;
    sendme.relay_cmd = RelayCommand::SendmeStream;
    sendme.stream_id = rc.stream_id;
    send_backward(key, circ, std::move(sendme));
  }
  if (st.is_local) {
    if (st.app_stream && st.app_stream->on_data_) st.app_stream->on_data_(rc.data);
  } else {
    tcp_.send(st.tcp_conn, rc.data);
  }
}

void Router::on_end(const Key& key, Circuit& circ, const RelayCell& rc) {
  auto it = circ.streams.find(rc.stream_id);
  if (it == circ.streams.end()) return;
  StreamState& st = it->second;
  st.remote_ended = true;
  if (st.is_local) {
    if (st.app_stream && st.app_stream->on_end_) st.app_stream->on_end_();
  } else {
    tcp_.close(st.tcp_conn);
  }
  circ.streams.erase(it);
  (void)key;
}

void Router::on_sendme(const Key& key, Circuit& circ, const RelayCell& rc) {
  if (rc.relay_cmd == RelayCommand::SendmeCircuit) {
    circ.circ_package_window += kCircuitWindowIncrement;
    // pump_stream may erase finished streams; snapshot the ids first.
    std::vector<StreamId> ids;
    ids.reserve(circ.streams.size());
    for (const auto& [sid, st] : circ.streams) ids.push_back(sid);
    for (StreamId sid : ids) pump_stream(key, circ, sid);
    return;
  }
  auto it = circ.streams.find(rc.stream_id);
  if (it == circ.streams.end()) return;
  it->second.package_window += kStreamWindowIncrement;
  pump_stream(key, circ, rc.stream_id);
}

void Router::on_establish_intro(const Key& key, Circuit& circ, const RelayCell& rc) {
  circ.intro_auth = rc.data;
  intro_points_[rc.data] = key;
  RelayCell ack;
  ack.relay_cmd = RelayCommand::IntroEstablished;
  send_backward(key, circ, std::move(ack));
}

void Router::on_introduce1(const Key& key, Circuit& circ, const RelayCell& rc) {
  util::Bytes auth;
  util::Bytes blob;
  try {
    util::Reader r(rc.data);
    auth = r.blob();
    blob = r.blob();
    r.expect_done();
  } catch (const util::ParseError&) {
    return;
  }
  auto it = intro_points_.find(auth);
  if (it == intro_points_.end()) return;
  Circuit* service_circ = find_circuit(it->second);
  if (service_circ == nullptr) return;
  RelayCell intro2;
  intro2.relay_cmd = RelayCommand::Introduce2;
  intro2.data = std::move(blob);
  send_backward(it->second, *service_circ, std::move(intro2));
  (void)key;
  (void)circ;
}

void Router::on_establish_rendezvous(const Key& key, Circuit& circ,
                                     const RelayCell& rc) {
  circ.rend_cookie = rc.data;
  rend_points_[rc.data] = key;
  RelayCell ack;
  ack.relay_cmd = RelayCommand::RendezvousEstablished;
  send_backward(key, circ, std::move(ack));
}

void Router::on_rendezvous1(const Key& key, Circuit& circ, const RelayCell& rc) {
  util::Bytes cookie;
  util::Bytes reply;
  try {
    util::Reader r(rc.data);
    cookie = r.blob();
    reply = r.blob();
    r.expect_done();
  } catch (const util::ParseError&) {
    return;
  }
  auto it = rend_points_.find(cookie);
  if (it == rend_points_.end()) return;
  const Key client_key = it->second;
  rend_points_.erase(it);
  Circuit* client_circ = find_circuit(client_key);
  if (client_circ == nullptr) return;

  client_circ->spliced = key;
  circ.spliced = client_key;

  RelayCell rend2;
  rend2.relay_cmd = RelayCommand::Rendezvous2;
  rend2.data = std::move(reply);
  send_backward(client_key, *client_circ, std::move(rend2));
}

void Router::send_backward(const Key& key, Circuit& circ, RelayCell rc) {
  auto payload = rc.pack();
  circ.crypto->seal_backward(payload);
  circ.crypto->crypt_backward(payload);
  Cell cell;
  cell.circ_id = circ.prev_id;
  cell.command = CellCommand::Relay;
  cell.payload = payload;
  send_cell(circ.prev_peer, cell);
  (void)key;
}

void Router::send_backward_raw(const Key& key, Circuit& circ,
                               std::array<std::uint8_t, kCellPayloadLen> payload) {
  circ.crypto->crypt_backward(payload);
  Cell cell;
  cell.circ_id = circ.prev_id;
  cell.command = CellCommand::Relay;
  cell.payload = payload;
  send_cell(circ.prev_peer, cell);
  (void)key;
}

void Router::pump_stream(const Key& key, Circuit& circ, StreamId sid) {
  auto it = circ.streams.find(sid);
  if (it == circ.streams.end()) return;
  StreamState& st = it->second;
  while (!st.outbuf.empty() && st.package_window > 0 && circ.circ_package_window > 0) {
    RelayCell data;
    data.relay_cmd = RelayCommand::Data;
    data.stream_id = sid;
    data.data = st.outbuf.pop(kRelayDataMax);
    st.package_window--;
    circ.circ_package_window--;
    send_backward(key, circ, std::move(data));
  }
  if (st.outbuf.empty() && st.end_after_flush) {
    RelayCell end;
    end.relay_cmd = RelayCommand::End;
    end.stream_id = sid;
    send_backward(key, circ, std::move(end));
    circ.streams.erase(sid);
  }
}

void Router::stream_deliver_backward(const Key& key, StreamId sid,
                                     util::ByteView data) {
  Circuit* circ = find_circuit(key);
  if (circ == nullptr) return;
  auto it = circ->streams.find(sid);
  if (it == circ->streams.end()) return;
  it->second.outbuf.push(data);
  pump_stream(key, *circ, sid);
}

void Router::stream_end_backward(const Key& key, StreamId sid) {
  Circuit* circ = find_circuit(key);
  if (circ == nullptr) return;
  auto it = circ->streams.find(sid);
  if (it == circ->streams.end()) return;
  it->second.end_after_flush = true;
  pump_stream(key, *circ, sid);
}

void Router::handle_destroy(sim::NodeId from, const Cell& cell) {
  const Key key{from, cell.circ_id};
  Circuit* circ = find_circuit(key);
  if (circ == nullptr) return;
  const bool from_prev = (from == circ->prev_peer && cell.circ_id == circ->prev_id);
  destroy_circuit(key, /*notify_prev=*/!from_prev, /*notify_next=*/from_prev);
}

void Router::destroy_circuit(const Key& key, bool notify_prev, bool notify_next) {
  auto it = circuits_.find(key);
  if (it == circuits_.end()) return;
  std::shared_ptr<Circuit> circ = it->second;

  // Close stream resources. Callbacks may touch the map; detach it first.
  auto doomed_streams = std::move(circ->streams);
  circ->streams.clear();
  for (auto& [sid, st] : doomed_streams) {
    if (st.is_local) {
      if (st.app_stream) st.app_stream->router_ = nullptr;
      if (st.app_stream && st.app_stream->on_end_) st.app_stream->on_end_();
    } else {
      tcp_.close(st.tcp_conn);
    }
  }

  if (!circ->intro_auth.empty()) intro_points_.erase(circ->intro_auth);
  if (!circ->rend_cookie.empty()) rend_points_.erase(circ->rend_cookie);

  if (notify_prev) {
    Cell destroy;
    destroy.circ_id = circ->prev_id;
    destroy.command = CellCommand::Destroy;
    send_cell(circ->prev_peer, destroy);
  }
  if (notify_next && circ->next.has_value()) {
    Cell destroy;
    destroy.circ_id = circ->next->second;
    destroy.command = CellCommand::Destroy;
    send_cell(circ->next->first, destroy);
  }

  // A spliced rendezvous mate is useless without us: tear it down too so
  // both origins observe the end of the joined circuit.
  if (circ->spliced.has_value()) {
    const Key mate_key = *circ->spliced;
    circ->spliced.reset();
    Circuit* mate = find_circuit(mate_key);
    if (mate != nullptr) {
      mate->spliced.reset();  // break the back-reference before recursing
      destroy_circuit(mate_key, true, true);
    }
  }

  circuits_.erase(Key{circ->prev_peer, circ->prev_id});
  if (circ->next.has_value()) circuits_.erase(*circ->next);
}

void Router::on_peer_down(sim::NodeId peer) {
  // Classify via the circuit's own endpoints, not the map key: each circuit
  // appears under both its prev and next keys. Collect first — teardown
  // cascades (splices) mutate circuits_.
  std::vector<std::pair<Key, bool>> doomed;  // key, dead peer was prev side
  for (auto& [key, circ] : circuits_) {
    if (key != Key{circ->prev_peer, circ->prev_id}) continue;  // dedupe
    if (circ->prev_peer == peer) {
      doomed.emplace_back(key, true);
    } else if (circ->next.has_value() && circ->next->first == peer) {
      doomed.emplace_back(key, false);
    }
  }
  for (const auto& [key, prev_died] : doomed) {
    if (find_circuit(key) == nullptr) continue;  // cascaded away already
    util::log_info(kComponent, "peer ", peer,
                   " down; destroying circuit (", key.first, ",", key.second, ")");
    // Notify only the surviving side; sending toward the corpse is pointless.
    destroy_circuit(key, /*notify_prev=*/!prev_died, /*notify_next=*/prev_died);
  }
  // Extends awaiting a CREATED from the dead peer will never hear back.
  std::vector<Key> dead_extends;
  for (const auto& [next_key, prev_key] : pending_extend_) {
    if (next_key.first == peer) dead_extends.push_back(next_key);
  }
  for (const Key& next_key : dead_extends) {
    auto it = pending_extend_.find(next_key);
    if (it == pending_extend_.end()) continue;
    const Key prev_key = it->second;
    pending_extend_.erase(it);
    if (find_circuit(prev_key) != nullptr) {
      destroy_circuit(prev_key, /*notify_prev=*/true, /*notify_next=*/false);
    }
  }
}

void Router::crash() {
  // Drop everything silently. Local apps still learn their streams died —
  // that models the process on the same host observing the crash — but no
  // cells leave this node.
  auto doomed = std::move(circuits_);
  circuits_.clear();
  for (auto& [key, circ] : doomed) {
    if (key != Key{circ->prev_peer, circ->prev_id}) continue;  // dedupe
    for (auto& [sid, st] : circ->streams) {
      if (st.is_local) {
        if (st.app_stream) st.app_stream->router_ = nullptr;
        if (st.app_stream && st.app_stream->on_end_) st.app_stream->on_end_();
      } else {
        tcp_.close(st.tcp_conn);
      }
    }
    circ->streams.clear();
  }
  pending_extend_.clear();
  intro_points_.clear();
  rend_points_.clear();
}

}  // namespace bento::tor
