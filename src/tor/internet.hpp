// The simulated clearnet: TCP-like connections and web servers.
//
// Exit relays (and Bento functions granted direct network access) reach
// external servers through `Internet`, which maps service addresses to
// simulator nodes. Connections speak a tiny framed protocol (OPEN / DATA /
// END) over the message network; servers add the handshake + slow-start
// delay from sim/transport.hpp before their first response byte so that
// clearnet fetches show realistic TCP latency behaviour.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/transport.hpp"
#include "tor/address.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace bento::tor {

/// Address book of the simulated Internet.
class Internet {
 public:
  void register_server(Addr addr, sim::NodeId node);
  std::optional<sim::NodeId> resolve(Addr addr) const;

 private:
  std::map<Addr, sim::NodeId> servers_;
};

/// Wire messages of the TCP-like protocol.
enum class TcpMsgType : std::uint8_t { Open = 1, OpenAck = 2, Data = 3, End = 4 };

struct TcpMsg {
  TcpMsgType type = TcpMsgType::Data;
  std::uint64_t conn_id = 0;
  Port dst_port = 0;      // Open only
  util::Bytes payload;    // Data only

  util::Bytes pack() const;
  static TcpMsg unpack(util::ByteView wire);
};

/// Client side of a TCP-like connection pool; owned by an exit relay or a
/// Bento server. Not a sim node itself — it piggybacks on its owner's node.
class TcpClient {
 public:
  struct Callbacks {
    std::function<void()> on_open;                 // OpenAck received
    std::function<void(util::ByteView)> on_data;
    std::function<void()> on_end;
  };

  TcpClient(sim::Network& net, sim::NodeId own_node) : net_(net), node_(own_node) {}

  /// Opens a connection; returns the local connection id.
  std::uint64_t open(sim::NodeId server, Port port, Callbacks cbs);
  void send(std::uint64_t conn_id, util::ByteView data);
  void close(std::uint64_t conn_id);

  /// Feed incoming messages that belong to this client (the owner
  /// demultiplexes by message source/port).
  void on_message(sim::NodeId from, const TcpMsg& msg);

 private:
  struct Conn {
    sim::NodeId server;
    Callbacks cbs;
    bool open = false;
  };
  sim::Network& net_;
  sim::NodeId node_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Conn> conns_;
};

/// Base class for servers on the simulated Internet.
class TcpServer : public sim::MessageHandler {
 public:
  TcpServer(sim::Simulator& sim, sim::Network& net) : sim_(sim), net_(net) {}

  void set_node(sim::NodeId node) { node_ = node; }
  sim::NodeId node() const { return node_; }

  void on_message(sim::NodeId from, util::Bytes data) final;

 protected:
  /// A connection key is (remote node, remote conn id).
  using ConnKey = std::pair<sim::NodeId, std::uint64_t>;

  virtual void on_conn_open(const ConnKey& conn, Port dst_port) = 0;
  virtual void on_conn_data(const ConnKey& conn, util::ByteView data) = 0;
  virtual void on_conn_end(const ConnKey& conn) = 0;

  void reply_data(const ConnKey& conn, util::Bytes data);
  void reply_end(const ConnKey& conn);

  sim::Simulator& sim_;
  sim::Network& net_;

 private:
  sim::NodeId node_ = sim::kInvalidNode;
};

/// An HTTP-ish web server: maps request paths to response bodies.
///
/// Requests are a single line "GET <path>". Responses are streamed in 8 KiB
/// DATA chunks; the first chunk is delayed by the TCP handshake/slow-start
/// model for the response size, the rest are paced by the node's uplink.
class WebServer : public TcpServer {
 public:
  using ContentFn = std::function<std::optional<util::Bytes>(const std::string& path)>;

  WebServer(sim::Simulator& sim, sim::Network& net, ContentFn content)
      : TcpServer(sim, net), content_(std::move(content)) {}

  /// TCP model knobs (ablation: disable slow start).
  sim::TcpModelParams& tcp_params() { return tcp_params_; }

  /// Random per-request server think time (drawn uniformly), modelling
  /// backend variance; defaults to none.
  void set_think_time(util::Duration min, util::Duration max, std::uint64_t seed);

  std::uint64_t requests_served() const { return requests_; }

 protected:
  void on_conn_open(const ConnKey& conn, Port dst_port) override;
  void on_conn_data(const ConnKey& conn, util::ByteView data) override;
  void on_conn_end(const ConnKey& conn) override;

 private:
  ContentFn content_;
  sim::TcpModelParams tcp_params_;
  util::Duration think_min_{};
  util::Duration think_max_{};
  util::Rng think_rng_{0};
  std::uint64_t requests_ = 0;
  std::map<ConnKey, std::string> partial_;  // request bytes until newline
};

}  // namespace bento::tor
