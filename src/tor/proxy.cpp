#include "tor/proxy.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "obs/trace.hpp"
#include "tor/wire.hpp"
#include "util/log.hpp"

namespace bento::tor {

namespace {
constexpr char kComponent[] = "tor.proxy";

Consensus check_consensus(Consensus consensus, crypto::Gp authority_key) {
  if (!consensus.verify(authority_key)) {
    throw std::invalid_argument("OnionProxy: consensus verification failed");
  }
  return consensus;
}
}  // namespace

OnionProxy::OnionProxy(sim::Simulator& sim, sim::Network& net,
                       const sim::NodeSpec& spec, Consensus consensus,
                       crypto::Gp authority_key, util::Rng rng)
    : sim_(sim),
      net_(net),
      node_(net.add_node(spec, this)),
      consensus_(check_consensus(std::move(consensus), authority_key)),
      rng_(rng) {}

OnionProxy::OnionProxy(sim::Simulator& sim, sim::Network& net,
                       sim::NodeId existing_node, Consensus consensus,
                       crypto::Gp authority_key, util::Rng rng)
    : sim_(sim),
      net_(net),
      node_(existing_node),
      consensus_(check_consensus(std::move(consensus), authority_key)),
      rng_(rng) {
  // Caller is responsible for forwarding framed cells to on_message when it
  // owns the node's handler.
}

CircId OnionProxy::alloc_circ_id(sim::NodeId guard) {
  CircId& counter = circ_counters_[guard];
  ++counter;
  return node_ < guard ? counter : (counter | 0x80000000u);
}

void OnionProxy::build_circuit(const PathConstraints& constraints,
                               std::function<void(CircuitOrigin*)> done) {
  PathSelector selector(consensus_);
  Path path;
  try {
    path = selector.choose(constraints, rng_);
  } catch (const std::exception& e) {
    util::log_warn(kComponent, "path selection failed: ", e.what());
    done(nullptr);
    return;
  }
  build_circuit_path(std::move(path), std::move(done));
}

void OnionProxy::build_circuit_retry(PathConstraints constraints, int attempts,
                                     std::function<void(CircuitOrigin*)> done) {
  if (attempts <= 0) {
    done(nullptr);
    return;
  }
  // The callback copies the constraints before build_circuit consumes them
  // (argument evaluation order is unspecified).
  auto retry_done = [this, constraints, attempts,
                     done = std::move(done)](CircuitOrigin* circ) mutable {
    if (circ != nullptr || attempts <= 1) {
      done(circ);
      return;
    }
    // Rebuild through a fresh path, excluding the relay the failed attempt
    // died at — unless it is the pinned destination, which every path must
    // keep (its crash is unrecoverable by rerouting).
    const std::string& bad = last_failed_hop_;
    if (!bad.empty() && bad != constraints.last_hop.value_or("") &&
        std::find(constraints.excluded.begin(), constraints.excluded.end(), bad) ==
            constraints.excluded.end()) {
      constraints.excluded.push_back(bad);
    }
    obs::trace(obs::Ev::CircRebuild, 0,
               static_cast<std::uint64_t>(constraints.excluded.size()));
    util::log_info(kComponent, "rebuilding circuit (", attempts - 1,
                   " attempts left, excluding ", constraints.excluded.size(),
                   " relays)");
    const int remaining = attempts - 1;
    build_circuit_retry(std::move(constraints), remaining,
                        [done = std::move(done)](CircuitOrigin* rebuilt) {
      if (rebuilt != nullptr) {
        obs::trace(obs::Ev::CircRebuild, rebuilt->circ_id(),
                   static_cast<std::uint64_t>(rebuilt->hop_count()), /*ok=*/true);
      }
      done(rebuilt);
    });
  };
  build_circuit(constraints, std::move(retry_done));
}

void OnionProxy::build_circuit_path(Path path,
                                    std::function<void(CircuitOrigin*)> done) {
  if (path.empty()) {
    done(nullptr);
    return;
  }
  const sim::NodeId guard = path.front().node;
  const CircId id = alloc_circ_id(guard);
  auto circ = std::make_unique<CircuitOrigin>(net_, node_, std::move(path), id, rng_);
  CircuitOrigin* raw = circ.get();
  raw->set_build_timeout(build_timeout_);
  circuits_[{guard, id}] = std::move(circ);
  raw->build([this, raw, done = std::move(done)](bool ok) {
    if (!ok) {
      last_failed_hop_ = raw->failed_hop();
      forget(raw);
      done(nullptr);
      return;
    }
    done(raw);
  });
}

void OnionProxy::forget(CircuitOrigin* circ) {
  if (circ == nullptr) return;
  const std::pair<sim::NodeId, CircId> key{circ->path().front().node, circ->circ_id()};
  auto it = circuits_.find(key);
  if (it == circuits_.end()) return;
  // Defer destruction to the next event: forget() is frequently reached
  // from inside the circuit's own callbacks.
  std::shared_ptr<CircuitOrigin> holder = std::move(it->second);
  circuits_.erase(it);
  sim_.after(util::Duration::micros(0), [holder] {});
}

void OnionProxy::on_message(sim::NodeId from, util::Bytes data) {
  if (!is_framed_cell(data)) {
    util::log_warn(kComponent, "non-cell message at client node");
    return;
  }
  const Cell cell = unframe_cell(data);
  auto it = circuits_.find({from, cell.circ_id});
  if (it == circuits_.end()) return;
  it->second->handle_cell(cell);
}

void OnionProxy::on_peer_down(sim::NodeId peer) {
  // Collect first: destroy() fires callbacks that may call forget() and
  // mutate circuits_ under us.
  std::vector<CircuitOrigin*> doomed;
  for (auto& [key, circ] : circuits_) {
    if (key.first == peer) doomed.push_back(circ.get());
  }
  for (CircuitOrigin* circ : doomed) {
    util::log_warn(kComponent, "guard ", peer, " down; destroying circuit ",
                   circ->circ_id());
    if (!circ->built()) {
      // Half-open build: the waiter must see done(nullptr). The build
      // wrapper records the failed hop and forgets the circuit itself.
      circ->fail_build();
    } else {
      circ->destroy();
      forget(circ);
    }
  }
}

}  // namespace bento::tor
