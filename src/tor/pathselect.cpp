#include "tor/pathselect.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace bento::tor {

namespace {
bool conflicts(const RelayDescriptor& candidate, const Path& chosen) {
  return std::any_of(chosen.begin(), chosen.end(), [&](const RelayDescriptor& c) {
    return c.fingerprint() == candidate.fingerprint() ||
           slash16(c.addr) == slash16(candidate.addr);
  });
}

bool excluded_by(const RelayDescriptor& candidate, const std::vector<std::string>& ex) {
  return std::find(ex.begin(), ex.end(), candidate.fingerprint()) != ex.end();
}
}  // namespace

const RelayDescriptor* PathSelector::pick_weighted(
    const std::function<bool(const RelayDescriptor&)>& ok, util::Rng& rng) const {
  std::vector<const RelayDescriptor*> eligible;
  std::vector<double> weights;
  for (const auto& rel : consensus_->relays) {
    if (!ok(rel)) continue;
    eligible.push_back(&rel);
    weights.push_back(rel.bandwidth);
  }
  if (eligible.empty()) return nullptr;
  return eligible[rng.weighted_index(weights)];
}

Path PathSelector::choose(const PathConstraints& constraints, util::Rng& rng) const {
  if (constraints.hops < 1 || constraints.hops > 8) {
    throw std::invalid_argument("PathSelector: unsupported hop count");
  }
  Path path;

  // Choose the last hop first: it has the tightest constraints.
  const RelayDescriptor* last = nullptr;
  if (constraints.last_hop.has_value()) {
    last = consensus_->find(*constraints.last_hop);
    if (last == nullptr) {
      throw std::runtime_error("PathSelector: pinned last hop not in consensus");
    }
    if (excluded_by(*last, constraints.excluded)) {
      throw std::runtime_error("PathSelector: pinned last hop is excluded");
    }
  } else {
    last = pick_weighted(
        [&](const RelayDescriptor& r) {
          if (excluded_by(r, constraints.excluded)) return false;
          if (constraints.exit_to.has_value()) {
            return r.flags.exit && r.exit_policy.allows(*constraints.exit_to);
          }
          return r.flags.fast;
        },
        rng);
    if (last == nullptr) {
      throw std::runtime_error("PathSelector: no eligible last hop");
    }
  }

  // Guard, then middles, left to right; each avoids conflicts with all
  // relays chosen so far (including the pinned last hop).
  Path chosen_so_far = {*last};
  for (int hop = 0; hop + 1 < constraints.hops; ++hop) {
    const bool is_guard = hop == 0;
    const RelayDescriptor* pick = pick_weighted(
        [&](const RelayDescriptor& r) {
          if (excluded_by(r, constraints.excluded)) return false;
          if (is_guard && !r.flags.guard) return false;
          if (!r.flags.fast) return false;
          return !conflicts(r, chosen_so_far);
        },
        rng);
    if (pick == nullptr) {
      throw std::runtime_error("PathSelector: no eligible relay for hop " +
                               std::to_string(hop));
    }
    path.push_back(*pick);
    chosen_so_far.push_back(*pick);
  }
  path.push_back(*last);
  return path;
}

}  // namespace bento::tor
