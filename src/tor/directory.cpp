#include "tor/directory.hpp"

#include <stdexcept>

#include "util/serialize.hpp"

namespace bento::tor {

std::uint8_t RelayFlags::pack() const {
  std::uint8_t bits = 0;
  if (guard) bits |= 1;
  if (exit) bits |= 2;
  if (fast) bits |= 4;
  if (stable) bits |= 8;
  if (hsdir) bits |= 16;
  if (bento) bits |= 32;
  return bits;
}

RelayFlags RelayFlags::unpack(std::uint8_t bits) {
  RelayFlags f;
  f.guard = bits & 1;
  f.exit = bits & 2;
  f.fast = bits & 4;
  f.stable = bits & 8;
  f.hsdir = bits & 16;
  f.bento = bits & 32;
  return f;
}

util::Bytes RelayDescriptor::signed_body() const {
  util::Writer w;
  w.str(nickname);
  w.raw(crypto::gp_to_bytes(identity_key));
  w.raw(crypto::gp_to_bytes(onion_key));
  w.u32(addr);
  w.u16(or_port);
  w.u32(node);
  w.u64(static_cast<std::uint64_t>(bandwidth));
  w.u8(flags.pack());
  w.blob(exit_policy.serialize());
  w.blob(bento_policy);
  return std::move(w).take();
}

util::Bytes RelayDescriptor::serialize() const {
  util::Writer w;
  w.blob(signed_body());
  w.raw(signature.to_bytes());
  return std::move(w).take();
}

RelayDescriptor RelayDescriptor::deserialize(util::ByteView data) {
  util::Reader outer(data);
  const util::Bytes body = outer.blob();
  const util::Bytes sig_bytes = outer.raw(2 * crypto::kGpBytes);
  outer.expect_done();

  util::Reader r(body);
  RelayDescriptor d;
  d.nickname = r.str();
  d.identity_key = crypto::gp_from_bytes(r.raw(crypto::kGpBytes));
  d.onion_key = crypto::gp_from_bytes(r.raw(crypto::kGpBytes));
  d.addr = r.u32();
  d.or_port = r.u16();
  d.node = r.u32();
  d.bandwidth = static_cast<double>(r.u64());
  d.flags = RelayFlags::unpack(r.u8());
  d.exit_policy = ExitPolicy::deserialize(r.blob());
  d.bento_policy = r.blob();
  r.expect_done();
  d.signature = crypto::Signature::from_bytes(sig_bytes);
  return d;
}

std::string RelayDescriptor::fingerprint() const {
  return crypto::key_fingerprint(identity_key);
}

void RelayDescriptor::sign(const crypto::SigningKey& identity) {
  if (identity.public_key() != identity_key) {
    throw std::invalid_argument("RelayDescriptor::sign: key mismatch");
  }
  signature = identity.sign(signed_body());
}

bool RelayDescriptor::verify() const {
  return crypto::verify(identity_key, signed_body(), signature);
}

util::Bytes Consensus::signed_body() const {
  util::Writer w;
  w.u64(static_cast<std::uint64_t>(valid_after.micros()));
  w.u32(static_cast<std::uint32_t>(relays.size()));
  for (const auto& rel : relays) w.blob(rel.serialize());
  return std::move(w).take();
}

bool Consensus::verify(crypto::Gp expected_authority) const {
  if (authority_key != expected_authority) return false;
  if (!crypto::verify(authority_key, signed_body(), signature)) return false;
  for (const auto& rel : relays) {
    if (!rel.verify()) return false;
  }
  return true;
}

const RelayDescriptor* Consensus::find(const std::string& fingerprint) const {
  for (const auto& rel : relays) {
    if (rel.fingerprint() == fingerprint) return &rel;
  }
  return nullptr;
}

util::Bytes HsDescriptor::signed_body() const {
  util::Writer w;
  w.str(onion_id);
  w.raw(crypto::gp_to_bytes(service_pub));
  w.raw(crypto::gp_to_bytes(service_ntor_pub));
  w.u32(static_cast<std::uint32_t>(intro_points.size()));
  for (const auto& ip : intro_points) w.str(ip);
  return std::move(w).take();
}

void HsDescriptor::sign(const crypto::SigningKey& service_key) {
  if (service_key.public_key() != service_pub) {
    throw std::invalid_argument("HsDescriptor::sign: key mismatch");
  }
  signature = service_key.sign(signed_body());
}

bool HsDescriptor::verify() const {
  if (onion_id != crypto::key_fingerprint(service_pub)) return false;
  return crypto::verify(service_pub, signed_body(), signature);
}

DirectoryAuthority::DirectoryAuthority(util::Rng& rng)
    : key_(crypto::SigningKey::generate(rng)) {}

void DirectoryAuthority::upload(const RelayDescriptor& descriptor) {
  if (!descriptor.verify()) {
    throw std::invalid_argument("DirectoryAuthority: bad descriptor signature");
  }
  descriptors_[descriptor.fingerprint()] = descriptor;
}

Consensus DirectoryAuthority::make_consensus(util::Time now) const {
  Consensus c;
  c.valid_after = now;
  for (const auto& [fp, d] : descriptors_) c.relays.push_back(d);
  c.authority_key = key_.public_key();
  c.signature = key_.sign(c.signed_body());
  return c;
}

void DirectoryAuthority::publish_hs(const HsDescriptor& descriptor) {
  if (!descriptor.verify()) {
    throw std::invalid_argument("DirectoryAuthority: bad HS descriptor");
  }
  hs_store_[descriptor.onion_id] = descriptor;
}

std::optional<HsDescriptor> DirectoryAuthority::fetch_hs(
    const std::string& onion_id) const {
  auto it = hs_store_.find(onion_id);
  if (it == hs_store_.end()) return std::nullopt;
  return it->second;
}

}  // namespace bento::tor
