#include "tor/hs.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"
#include "tor/ntor.hpp"
#include "util/log.hpp"
#include "util/serialize.hpp"

namespace bento::tor {

namespace {
constexpr char kComponent[] = "tor.hs";
constexpr std::string_view kIntroLabel = "bento-hs-intro";

crypto::AeadKey intro_key(util::ByteView shared) {
  return crypto::AeadKey::from_bytes(crypto::hkdf(shared, {}, kIntroLabel, 64));
}
}  // namespace

util::Bytes make_intro_blob(crypto::Gp service_ntor_pub,
                            const std::string& rend_fingerprint,
                            util::ByteView cookie, util::ByteView ntor_skin,
                            util::Rng& rng) {
  const crypto::DhKeyPair tmp = crypto::DhKeyPair::generate(rng);
  const util::Bytes shared = crypto::dh_shared(tmp, service_ntor_pub);
  util::Writer pt;
  pt.str(rend_fingerprint);
  pt.blob(cookie);
  pt.blob(ntor_skin);
  const util::Bytes sealed =
      crypto::aead_seal(intro_key(shared), crypto::nonce_from_counter(0), {}, pt.data());
  util::Bytes out = crypto::gp_to_bytes(tmp.public_value);
  util::append(out, sealed);
  return out;
}

bool open_intro_blob(const crypto::DhKeyPair& service_ntor_key, util::ByteView blob,
                     std::string* rend_fingerprint, util::Bytes* cookie,
                     util::Bytes* ntor_skin) {
  if (blob.size() < static_cast<std::size_t>(crypto::kGpBytes) + crypto::kAeadTagLen) {
    return false;
  }
  try {
    const crypto::Gp tmp_pub = crypto::gp_from_bytes(blob.first(crypto::kGpBytes));
    const util::Bytes shared = crypto::dh_shared(service_ntor_key, tmp_pub);
    auto opened = crypto::aead_open(intro_key(shared), crypto::nonce_from_counter(0),
                                    {}, blob.subspan(crypto::kGpBytes));
    if (!opened.has_value()) return false;
    util::Reader r(*opened);
    *rend_fingerprint = r.str();
    *cookie = r.blob();
    *ntor_skin = r.blob();
    r.expect_done();
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

HiddenServiceHost::HiddenServiceHost(OnionProxy& proxy, DirectoryAuthority& directory,
                                     int intro_count)
    : HiddenServiceHost(proxy, directory,
                        Identity{crypto::SigningKey::generate(proxy.rng()),
                                 crypto::DhKeyPair::generate(proxy.rng())},
                        intro_count) {}

HiddenServiceHost::HiddenServiceHost(OnionProxy& proxy, DirectoryAuthority& directory,
                                     const Identity& identity, int intro_count)
    : proxy_(proxy),
      directory_(directory),
      identity_(identity),
      onion_id_(crypto::key_fingerprint(identity.signing_key.public_key())),
      intro_count_(intro_count) {
  if (intro_count_ < 1) throw std::invalid_argument("HiddenServiceHost: intro_count");
}

HiddenServiceHost::~HiddenServiceHost() {
  alive_.reset();  // every registered circuit callback is now a no-op
  auto intro = std::move(intro_circuits_);
  auto rend = std::move(rend_circuits_);
  for (CircuitOrigin* circ : intro) {
    if (circ == nullptr) continue;
    circ->destroy();
    proxy_.forget(circ);
  }
  for (CircuitOrigin* circ : rend) {
    if (circ == nullptr) continue;
    circ->destroy();
    proxy_.forget(circ);
  }
}

void HiddenServiceHost::publish_descriptor() {
  HsDescriptor desc;
  desc.onion_id = onion_id_;
  desc.service_pub = identity_.signing_key.public_key();
  desc.service_ntor_pub = identity_.ntor_key.public_value;
  desc.intro_points = intro_fingerprints_;
  desc.sign(identity_.signing_key);
  directory_.publish_hs(desc);
}

void HiddenServiceHost::start(std::function<void(bool)> ready) {
  // Choose distinct introduction points, bandwidth-weighted.
  PathSelector selector(proxy_.consensus());
  for (int i = 0; i < intro_count_; ++i) {
    const RelayDescriptor* pick = selector.pick_weighted(
        [&](const RelayDescriptor& r) {
          if (!r.flags.fast) return false;
          for (const auto& fp : intro_fingerprints_) {
            if (fp == r.fingerprint()) return false;
          }
          return true;
        },
        proxy_.rng());
    if (pick == nullptr) {
      ready(false);
      return;
    }
    intro_fingerprints_.push_back(pick->fingerprint());
  }
  intro_circuits_.assign(intro_fingerprints_.size(), nullptr);

  auto remaining = std::make_shared<int>(intro_count_);
  auto failed = std::make_shared<bool>(false);
  auto ready_shared = std::make_shared<std::function<void(bool)>>(std::move(ready));
  for (std::size_t i = 0; i < intro_fingerprints_.size(); ++i) {
    establish_intro(i, [this, remaining, failed, ready_shared](bool ok) {
      if (!ok) *failed = true;
      if (--*remaining == 0) {
        if (!*failed) publish_descriptor();
        (*ready_shared)(!*failed);
      }
    });
  }
}

void HiddenServiceHost::establish_intro(std::size_t index,
                                        std::function<void(bool)> done) {
  PathConstraints constraints;
  constraints.last_hop = intro_fingerprints_[index];
  std::weak_ptr<char> alive = alive_;
  proxy_.build_circuit(constraints, [this, alive, index, done = std::move(done)](
                                        CircuitOrigin* circ) {
    if (alive.expired()) {
      if (circ != nullptr) circ->destroy();
      return;
    }
    if (circ == nullptr) {
      done(false);
      return;
    }
    intro_circuits_[index] = circ;
    circ->set_on_destroy([this, alive, index] {
      if (alive.expired()) return;
      intro_circuits_[index] = nullptr;
    });
    auto done_shared = std::make_shared<std::function<void(bool)>>(std::move(done));
    auto acked = std::make_shared<bool>(false);
    circ->set_relay_handler([this, alive, done_shared, acked](const RelayCell& rc, int) {
      if (alive.expired()) return;
      if (rc.relay_cmd == RelayCommand::IntroEstablished) {
        if (!*acked) {
          *acked = true;
          (*done_shared)(true);
        }
        return;
      }
      if (rc.relay_cmd == RelayCommand::Introduce2) {
        on_introduce2(rc);
        return;
      }
      util::log_warn(kComponent, "intro circuit: unexpected ", to_string(rc.relay_cmd));
    });
    RelayCell establish;
    establish.relay_cmd = RelayCommand::EstablishIntro;
    establish.data = crypto::gp_to_bytes(identity_.signing_key.public_key());
    circ->send_relay(std::move(establish));
  });
}

void HiddenServiceHost::on_introduce2(const RelayCell& rc) {
  if (intro_interceptor_ && !intro_interceptor_(rc.data)) {
    return;  // interceptor took ownership (e.g. LoadBalancer redirect)
  }
  handle_introduction(rc.data);
}

void HiddenServiceHost::handle_introduction(util::ByteView blob) {
  std::string rend_fp;
  util::Bytes cookie;
  util::Bytes skin;
  if (!open_intro_blob(identity_.ntor_key, blob, &rend_fp, &cookie, &skin)) {
    util::log_warn(kComponent, "undecryptable INTRODUCE2");
    return;
  }
  NtorServerReply reply;
  try {
    reply = ntor_server_respond(identity_.ntor_key, identity_.signing_key.public_key(),
                                skin, proxy_.rng());
  } catch (const std::invalid_argument&) {
    return;
  }

  PathConstraints constraints;
  constraints.last_hop = rend_fp;
  std::weak_ptr<char> alive = alive_;
  proxy_.build_circuit(constraints, [this, alive, cookie, reply](CircuitOrigin* circ) {
    if (alive.expired()) {
      if (circ != nullptr) circ->destroy();
      return;
    }
    if (circ == nullptr) return;
    rend_circuits_.push_back(circ);
    circ->set_stream_acceptor(acceptor_);
    RelayCell rend1;
    rend1.relay_cmd = RelayCommand::Rendezvous1;
    util::Writer w;
    w.blob(cookie);
    w.blob(reply.created_payload);
    rend1.data = std::move(w).take();
    circ->send_relay(std::move(rend1));
    // All subsequent cells on this circuit belong to the e2e layer.
    circ->enable_virtual_relay(reply.keys);
    ++active_rendezvous_;
    if (on_load_change_) on_load_change_(active_rendezvous_);
    circ->set_on_destroy([this, alive, circ] {
      if (alive.expired()) return;
      std::erase(rend_circuits_, circ);
      if (active_rendezvous_ > 0) --active_rendezvous_;
      if (on_load_change_) on_load_change_(active_rendezvous_);
    });
  });
}

void HsClient::connect(const std::string& onion_id,
                       std::function<void(CircuitOrigin*)> done) {
  auto desc = directory_.fetch_hs(onion_id);
  if (!desc.has_value() || !desc->verify() || desc->intro_points.empty()) {
    done(nullptr);
    return;
  }

  struct Context {
    HsDescriptor desc;
    util::Bytes cookie;
    NtorClientState ntor;
    util::Bytes skin;
    CircuitOrigin* rend_circ = nullptr;
    CircuitOrigin* intro_circ = nullptr;
    std::function<void(CircuitOrigin*)> done;
    bool finished = false;
  };
  auto ctx = std::make_shared<Context>();
  ctx->desc = *desc;
  ctx->cookie = proxy_.rng().bytes(20);
  ctx->skin = ntor_client_create(ctx->ntor, desc->service_ntor_pub,
                                 desc->service_pub, proxy_.rng());
  ctx->done = std::move(done);

  // Step 1: establish the rendezvous point.
  PathSelector selector(proxy_.consensus());
  const RelayDescriptor* rend = selector.pick_weighted(
      [](const RelayDescriptor& r) { return r.flags.fast; }, proxy_.rng());
  if (rend == nullptr) {
    ctx->done(nullptr);
    return;
  }
  const std::string rend_fp = rend->fingerprint();

  PathConstraints rend_constraints;
  rend_constraints.last_hop = rend_fp;
  proxy_.build_circuit(rend_constraints, [this, ctx, rend_fp](CircuitOrigin* circ) {
    if (circ == nullptr) {
      ctx->done(nullptr);
      return;
    }
    ctx->rend_circ = circ;
    circ->set_relay_handler([this, ctx, rend_fp](const RelayCell& rc, int) {
      if (rc.relay_cmd == RelayCommand::RendezvousEstablished) {
        // Step 2: introduce through a random introduction point.
        const auto& ips = ctx->desc.intro_points;
        const std::string intro_fp =
            ips[proxy_.rng().uniform(0, ips.size() - 1)];
        PathConstraints intro_constraints;
        intro_constraints.last_hop = intro_fp;
        proxy_.build_circuit(intro_constraints, [this, ctx,
                                                 rend_fp](CircuitOrigin* icirc) {
          if (icirc == nullptr) {
            if (!ctx->finished) {
              ctx->finished = true;
              ctx->done(nullptr);
            }
            return;
          }
          ctx->intro_circ = icirc;
          RelayCell intro1;
          intro1.relay_cmd = RelayCommand::Introduce1;
          util::Writer w;
          w.blob(crypto::gp_to_bytes(ctx->desc.service_pub));
          w.blob(make_intro_blob(ctx->desc.service_ntor_pub, rend_fp, ctx->cookie,
                                 ctx->skin, proxy_.rng()));
          intro1.data = std::move(w).take();
          icirc->send_relay(std::move(intro1));
        });
        return;
      }
      if (rc.relay_cmd == RelayCommand::Rendezvous2) {
        if (ctx->finished) return;
        auto keys = ntor_client_finish(ctx->ntor, rc.data);
        if (!keys.has_value()) {
          ctx->finished = true;
          ctx->done(nullptr);
          return;
        }
        ctx->rend_circ->add_hop_keys(*keys);
        ctx->finished = true;
        // The introduction circuit has served its purpose.
        if (ctx->intro_circ != nullptr) {
          ctx->intro_circ->destroy();
          proxy_.forget(ctx->intro_circ);
          ctx->intro_circ = nullptr;
        }
        ctx->done(ctx->rend_circ);
        return;
      }
      util::log_warn(kComponent, "rend circuit: unexpected ", to_string(rc.relay_cmd));
    });
    RelayCell establish;
    establish.relay_cmd = RelayCommand::EstablishRendezvous;
    establish.data = ctx->cookie;
    circ->send_relay(std::move(establish));
  });
}

}  // namespace bento::tor
