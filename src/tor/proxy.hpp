// The Onion Proxy: the client endpoint of the Tor overlay.
//
// Owns a simulator node, builds circuits via path selection over a verified
// consensus, and dispatches incoming cells to its circuits. Bento clients,
// hidden-service hosts, and the Browser function's dedicated OP (paper
// §5.4) are all built on this class.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "tor/circuit.hpp"
#include "tor/directory.hpp"
#include "tor/pathselect.hpp"

namespace bento::tor {

class OnionProxy : public sim::MessageHandler {
 public:
  /// Verifies the consensus signature before accepting it; throws
  /// std::invalid_argument on failure.
  OnionProxy(sim::Simulator& sim, sim::Network& net, const sim::NodeSpec& spec,
             Consensus consensus, crypto::Gp authority_key, util::Rng rng);

  /// Attach to an existing node instead of creating one (used when a Bento
  /// function spawns its own OP on the relay host).
  OnionProxy(sim::Simulator& sim, sim::Network& net, sim::NodeId existing_node,
             Consensus consensus, crypto::Gp authority_key, util::Rng rng);

  sim::NodeId node() const { return node_; }
  const Consensus& consensus() const { return consensus_; }
  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return net_; }
  util::Rng& rng() { return rng_; }

  /// Builds a circuit; `done` receives nullptr on failure. The proxy owns
  /// the returned circuit until it is destroyed.
  void build_circuit(const PathConstraints& constraints,
                     std::function<void(CircuitOrigin*)> done);

  /// Like build_circuit, but on failure reselects a path excluding the hop
  /// the failed attempt died at and tries again, up to `attempts` total
  /// builds. Each retry is traced (Ev::CircRebuild).
  void build_circuit_retry(PathConstraints constraints, int attempts,
                           std::function<void(CircuitOrigin*)> done);

  /// Builds a circuit over an explicit path (testing / pinned paths).
  void build_circuit_path(Path path, std::function<void(CircuitOrigin*)> done);

  /// Applied to every circuit this proxy builds (0 disables the watchdog).
  void set_build_timeout(util::Duration d) { build_timeout_ = d; }

  /// Fingerprint of the hop the most recent failed build died at; empty when
  /// no build has failed or the hop is unknown.
  const std::string& last_failed_hop() const { return last_failed_hop_; }

  /// Removes a destroyed circuit's bookkeeping.
  void forget(CircuitOrigin* circ);

  std::size_t open_circuits() const { return circuits_.size(); }

  void on_message(sim::NodeId from, util::Bytes data) override;

  /// Guard crashed: destroy every circuit entering the overlay through it so
  /// waiters see failure promptly instead of timing out.
  void on_peer_down(sim::NodeId peer) override;

 private:
  CircId alloc_circ_id(sim::NodeId guard);

  sim::Simulator& sim_;
  sim::Network& net_;
  sim::NodeId node_;
  Consensus consensus_;
  util::Rng rng_;
  std::map<std::pair<sim::NodeId, CircId>, std::unique_ptr<CircuitOrigin>> circuits_;
  std::map<sim::NodeId, CircId> circ_counters_;
  util::Duration build_timeout_ = util::Duration::seconds(30);
  std::string last_failed_hop_;
};

}  // namespace bento::tor
