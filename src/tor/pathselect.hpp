// Bandwidth-weighted path selection (tor path-spec).
//
// Three-hop paths: guard -> middle -> exit, sampled proportionally to
// consensus bandwidth among relays with the required flags, with the usual
// diversity constraints: distinct relays and distinct /16 prefixes. The
// exit must allow the target endpoint in its policy; for internal circuits
// (hidden-service legs, Bento middlebox visits) any relay may terminate.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "tor/directory.hpp"
#include "util/rng.hpp"

namespace bento::tor {

struct PathConstraints {
  /// Endpoint the exit must allow; nullopt builds an internal circuit.
  std::optional<Endpoint> exit_to;
  /// Force a specific relay fingerprint as the last hop (e.g. a Bento box,
  /// an introduction or rendezvous point).
  std::optional<std::string> last_hop;
  /// Relays that must not appear anywhere on the path.
  std::vector<std::string> excluded;
  int hops = 3;
};

/// A selected path (descriptors copied from the consensus, first = guard).
using Path = std::vector<RelayDescriptor>;

class PathSelector {
 public:
  explicit PathSelector(const Consensus& consensus) : consensus_(&consensus) {}

  /// Samples a path; throws std::runtime_error if the constraints are
  /// unsatisfiable with the current consensus.
  Path choose(const PathConstraints& constraints, util::Rng& rng) const;

  /// Samples a single relay with the given predicate, bandwidth-weighted.
  const RelayDescriptor* pick_weighted(
      const std::function<bool(const RelayDescriptor&)>& ok, util::Rng& rng) const;

 private:
  const Consensus* consensus_;
};

}  // namespace bento::tor
