// Directory subsystem: relay descriptors, the signed network consensus, and
// the hidden-service descriptor store (HSDir).
//
// Relays upload self-signed descriptors; the directory authority verifies
// them and periodically emits a consensus signed with its own key, which
// clients verify before using. Bento middlebox-node policies piggyback on
// descriptors exactly as the paper proposes for dissemination (§5.5).
//
// Simplification (documented in DESIGN.md): directory traffic is exchanged
// by direct calls rather than over the simulated wire — it is not part of
// any measured path in the paper's evaluation.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/sign.hpp"
#include "sim/network.hpp"
#include "tor/address.hpp"
#include "tor/exitpolicy.hpp"
#include "util/bytes.hpp"
#include "util/time.hpp"

namespace bento::tor {

struct RelayFlags {
  bool guard = false;
  bool exit = false;
  bool fast = true;
  bool stable = true;
  bool hsdir = false;
  bool bento = false;  // advertises a Bento server (paper §5)

  std::uint8_t pack() const;
  static RelayFlags unpack(std::uint8_t bits);
};

struct RelayDescriptor {
  std::string nickname;
  crypto::Gp identity_key = 0;  // long-term signing key
  crypto::Gp onion_key = 0;     // ntor handshake key
  Addr addr = 0;
  Port or_port = 9001;
  sim::NodeId node = sim::kInvalidNode;  // simulator routing address
  double bandwidth = 1e6;                // consensus weight, bytes/sec
  RelayFlags flags;
  ExitPolicy exit_policy;
  util::Bytes bento_policy;  // serialized middlebox node policy, may be empty
  crypto::Signature signature;

  /// Canonical bytes covered by the signature.
  util::Bytes signed_body() const;
  util::Bytes serialize() const;
  static RelayDescriptor deserialize(util::ByteView data);

  /// Identity-key fingerprint (hex) — the relay's stable name.
  std::string fingerprint() const;

  /// Signs with the matching identity key.
  void sign(const crypto::SigningKey& identity);
  bool verify() const;
};

struct Consensus {
  util::Time valid_after;
  std::vector<RelayDescriptor> relays;
  crypto::Gp authority_key = 0;
  crypto::Signature signature;

  util::Bytes signed_body() const;
  bool verify(crypto::Gp expected_authority) const;

  const RelayDescriptor* find(const std::string& fingerprint) const;
};

/// Hidden-service descriptor (v2-style, paper §2.1).
struct HsDescriptor {
  std::string onion_id;                   // fingerprint of service_pub
  crypto::Gp service_pub = 0;             // service identity (signing) key
  crypto::Gp service_ntor_pub = 0;        // key for the client<->service handshake
  std::vector<std::string> intro_points;  // relay fingerprints
  crypto::Signature signature;

  util::Bytes signed_body() const;
  void sign(const crypto::SigningKey& service_key);
  bool verify() const;
};

/// The directory authority plus HSDir store.
class DirectoryAuthority {
 public:
  explicit DirectoryAuthority(util::Rng& rng);

  crypto::Gp authority_key() const { return key_.public_key(); }

  /// Accepts a relay descriptor; throws std::invalid_argument if the
  /// self-signature is invalid.
  void upload(const RelayDescriptor& descriptor);

  /// Builds and signs a fresh consensus from the uploaded descriptors.
  Consensus make_consensus(util::Time now) const;

  /// HSDir: publish/fetch. Publishing verifies the descriptor signature and
  /// that onion_id matches the service key.
  void publish_hs(const HsDescriptor& descriptor);
  std::optional<HsDescriptor> fetch_hs(const std::string& onion_id) const;

  std::size_t relay_count() const { return descriptors_.size(); }

 private:
  crypto::SigningKey key_;
  std::map<std::string, RelayDescriptor> descriptors_;  // by fingerprint
  std::map<std::string, HsDescriptor> hs_store_;
};

}  // namespace bento::tor
