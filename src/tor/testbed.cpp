#include "tor/testbed.hpp"

#include <stdexcept>

namespace bento::tor {

Testbed::Testbed(const TestbedOptions& options)
    : options_(options), sim_(options.seed), net_(sim_), rng_(options.seed ^ 0xabcdef),
      dir_(rng_) {
  auto add_group = [&](int count, const char* prefix, bool guard, bool exit) {
    for (int i = 0; i < count; ++i) {
      RelayConfig cfg;
      cfg.nickname = std::string(prefix) + std::to_string(i);
      // Distinct /16 per relay: 10.<block>.0.1
      cfg.addr = parse_addr("10." + std::to_string(next_addr_block_++) + ".0.1");
      cfg.bandwidth = options_.relay_bandwidth;
      cfg.up_bytes_per_sec = options_.relay_bandwidth;
      cfg.down_bytes_per_sec = options_.relay_bandwidth;
      cfg.flags.guard = guard;
      cfg.flags.exit = exit;
      cfg.flags.fast = true;
      cfg.flags.bento = options_.all_bento;
      if (options_.all_bento) cfg.bento_policy = options_.bento_policy;
      cfg.exit_policy =
          exit ? ExitPolicy::parse(options_.exit_policy) : ExitPolicy::reject_all();
      add_relay(cfg);
    }
  };
  add_group(options_.guards, "guard", true, false);
  add_group(options_.middles, "middle", false, false);
  add_group(options_.exits, "exit", false, true);
}

void Testbed::assign_latencies(sim::NodeId node) {
  const auto lo = static_cast<std::uint64_t>(options_.min_latency.count_micros());
  const auto hi = static_cast<std::uint64_t>(options_.max_latency.count_micros());
  for (std::size_t i = 0; i < net_.node_count(); ++i) {
    const auto other = static_cast<sim::NodeId>(i);
    if (other == node) continue;
    net_.set_latency(node, other,
                     util::Duration::micros(
                         static_cast<std::int64_t>(rng_.uniform(lo, hi))));
  }
}

std::size_t Testbed::add_relay(const RelayConfig& config) {
  if (finalized_) throw std::logic_error("Testbed: add_relay after finalize");
  auto router =
      std::make_unique<Router>(sim_, net_, internet_, config, rng_.fork());
  assign_latencies(router->node());
  routers_.push_back(std::move(router));
  return routers_.size() - 1;
}

Router* Testbed::router_by_fingerprint(const std::string& fp) {
  for (auto& r : routers_) {
    if (r->fingerprint() == fp) return r.get();
  }
  return nullptr;
}

void Testbed::finalize() {
  if (finalized_) throw std::logic_error("Testbed: finalize twice");
  finalized_ = true;
  for (auto& r : routers_) r->publish(dir_);
  consensus_ = dir_.make_consensus(sim_.now());
  for (auto& r : routers_) r->set_consensus(&consensus_);
}

std::unique_ptr<OnionProxy> Testbed::make_client(const std::string& name,
                                                 double bandwidth) {
  if (!finalized_) throw std::logic_error("Testbed: make_client before finalize");
  auto proxy = std::make_unique<OnionProxy>(
      sim_, net_, sim::NodeSpec{name, bandwidth, bandwidth}, consensus_,
      dir_.authority_key(), rng_.fork());
  assign_latencies(proxy->node());
  return proxy;
}

WebServer& Testbed::add_web_server(Addr addr, WebServer::ContentFn content,
                                   double bandwidth) {
  auto server = std::make_unique<WebServer>(sim_, net_, std::move(content));
  const sim::NodeId node =
      net_.add_node({"web-" + format_addr(addr), bandwidth, bandwidth}, server.get());
  server->set_node(node);
  assign_latencies(node);
  internet_.register_server(addr, node);
  web_servers_.push_back(std::move(server));
  return *web_servers_.back();
}

}  // namespace bento::tor
