// Hidden services (paper §2.1): host and client sides of the
// introduction/rendezvous protocol, built entirely on OnionProxy circuits.
//
// Host:   picks introduction points, ESTABLISH_INTROs to each, publishes a
//         signed descriptor to the HSDir, and answers INTRODUCE2s by
//         building a circuit to the client's rendezvous point and joining
//         it with RENDEZVOUS1. The client<->service layer comes from an
//         ntor handshake keyed by the service's published handshake key.
// Client: establishes a rendezvous cookie, INTRODUCE1s through one of the
//         descriptor's introduction points, and on RENDEZVOUS2 attaches the
//         e2e layer as a virtual 4th hop. The returned circuit then opens
//         streams to the service's virtual ports like any other circuit.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "crypto/aead.hpp"
#include "tor/circuit.hpp"
#include "tor/directory.hpp"
#include "tor/proxy.hpp"

namespace bento::tor {

class HiddenServiceHost {
 public:
  /// `intro_count` introduction points are selected bandwidth-weighted.
  HiddenServiceHost(OnionProxy& proxy, DirectoryAuthority& directory,
                    int intro_count = 3);

  /// Destroys the host's intro and rendezvous circuits and disarms every
  /// callback they hold. The circuits live on the proxy, which may outlive
  /// the host (a crashed Bento server tears down its containers — and their
  /// hidden services — while the box's onion proxy survives).
  ~HiddenServiceHost();

  /// The pseudonymous identifier clients dial ("onion address").
  std::string onion_id() const { return onion_id_; }

  /// Establishes introduction circuits and publishes the descriptor.
  void start(std::function<void(bool ok)> ready);

  /// Called for every stream a connected client opens; return false to
  /// refuse. The Endpoint the client dialed is in the BEGIN payload (port
  /// selects the virtual service port; this simplified acceptor ignores it).
  void set_stream_acceptor(std::function<bool(Stream&)> acceptor) {
    acceptor_ = std::move(acceptor);
  }

  /// Re-publishes the descriptor (used by LoadBalancer replica promotion).
  void publish_descriptor();

  /// Number of rendezvous circuits currently joined.
  std::size_t active_rendezvous() const { return active_rendezvous_; }

  /// Fires whenever active_rendezvous() changes (LoadBalancer load reports).
  void set_on_load_change(std::function<void(std::size_t)> fn) {
    on_load_change_ = std::move(fn);
  }

  /// Clone the service identity into another host (paper §8: LoadBalancer
  /// "copies all files (including the hostname and private key) to the new
  /// instance"). The replica can then answer rendezvous requests for the
  /// same onion id.
  struct Identity {
    crypto::SigningKey signing_key;
    crypto::DhKeyPair ntor_key;
  };
  const Identity& identity() const { return identity_; }
  HiddenServiceHost(OnionProxy& proxy, DirectoryAuthority& directory,
                    const Identity& identity, int intro_count = 3);

  /// Handles a relayed INTRODUCE2 blob directly (used when a front end
  /// forwards introductions to a replica instead of answering itself).
  void handle_introduction(util::ByteView blob);

  /// Hook observing each INTRODUCE2 before it is answered; return false to
  /// take over handling (LoadBalancer redirects to a replica).
  void set_intro_interceptor(std::function<bool(util::ByteView blob)> fn) {
    intro_interceptor_ = std::move(fn);
  }

 private:
  void establish_intro(std::size_t index, std::function<void(bool)> done);
  void on_introduce2(const RelayCell& rc);

  OnionProxy& proxy_;
  DirectoryAuthority& directory_;
  Identity identity_;
  std::string onion_id_;
  int intro_count_;
  std::vector<std::string> intro_fingerprints_;
  std::vector<CircuitOrigin*> intro_circuits_;
  std::vector<CircuitOrigin*> rend_circuits_;
  std::function<bool(Stream&)> acceptor_;
  std::function<bool(util::ByteView)> intro_interceptor_;
  std::function<void(std::size_t)> on_load_change_;
  std::size_t active_rendezvous_ = 0;
  // Liveness token: circuit callbacks capture a weak_ptr and no-op once the
  // host is gone, so a cell arriving after teardown cannot touch freed state.
  std::shared_ptr<char> alive_ = std::make_shared<char>('\0');
};

class HsClient {
 public:
  HsClient(OnionProxy& proxy, const DirectoryAuthority& directory)
      : proxy_(proxy), directory_(directory) {}

  /// Connects to a hidden service. On success the callback receives the
  /// joined rendezvous circuit (owned by the proxy); streams opened on it
  /// reach the service. On failure it receives nullptr.
  void connect(const std::string& onion_id,
               std::function<void(CircuitOrigin*)> done);

 private:
  OnionProxy& proxy_;
  const DirectoryAuthority& directory_;
};

/// Builds the INTRODUCE1 payload: an ECIES-style blob only the service can
/// open, hiding the rendezvous point from the introduction point.
util::Bytes make_intro_blob(crypto::Gp service_ntor_pub,
                            const std::string& rend_fingerprint,
                            util::ByteView cookie, util::ByteView ntor_skin,
                            util::Rng& rng);

/// Service side: opens an intro blob. Returns false on decryption failure.
bool open_intro_blob(const crypto::DhKeyPair& service_ntor_key, util::ByteView blob,
                     std::string* rend_fingerprint, util::Bytes* cookie,
                     util::Bytes* ntor_skin);

}  // namespace bento::tor
