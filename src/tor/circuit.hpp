// Client-side circuit: the origin endpoint that owns every onion layer.
//
// A CircuitOrigin builds a circuit hop by hop (CREATE, then EXTENDs), opens
// streams over it, and implements Tor's SENDME flow control. Two
// hidden-service extensions mirror how Tor joins rendezvous circuits:
//
//  * add_hop_keys()       — client side: appends the end-to-end layer from
//                           the hs-ntor handshake as a virtual 4th hop.
//  * enable_virtual_relay() — service side: the service *terminates* the
//                           virtual layer like a relay would (it checks the
//                           origin's forward digests and seals backward
//                           ones), and its real hops merely transport
//                           opaque payloads.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "sim/network.hpp"
#include "tor/cell.hpp"
#include "tor/flow.hpp"
#include "tor/ntor.hpp"
#include "tor/pathselect.hpp"
#include "tor/relaycrypto.hpp"
#include "util/rng.hpp"

namespace bento::tor {

class CircuitOrigin;

/// Origin-side stream endpoint (also used by hidden services for accepted
/// streams). Owned by its CircuitOrigin; valid until on_end fires or the
/// circuit is destroyed.
class Stream {
 public:
  struct Callbacks {
    std::function<void()> on_connected;
    std::function<void(util::ByteView)> on_data;
    std::function<void()> on_end;
  };

  StreamId id() const { return id_; }
  bool connected() const { return connected_; }

  /// Queues data (chunked into DATA cells, window-limited).
  void send(util::ByteView data);
  /// Sends RELAY_END once buffered data drains.
  void end();

  void set_on_connected(std::function<void()> fn) { cbs_.on_connected = std::move(fn); }
  void set_on_data(std::function<void(util::ByteView)> fn) { cbs_.on_data = std::move(fn); }
  void set_on_end(std::function<void()> fn) { cbs_.on_end = std::move(fn); }

 private:
  friend class CircuitOrigin;
  // Stream is a facade; the circuit owns the windows and pumps the buffer.
  CircuitOrigin* circ_ = nullptr;
  StreamId id_ = 0;
  Callbacks cbs_;
  bool connected_ = false;
  int package_window = kStreamWindowInit;
  int delivered = 0;
  ByteQueue outbuf;
  bool end_after_flush = false;
  // Sim-time telemetry (micros; -1 = not yet). TTFB/TTLB land in the trace
  // and the tor.stream_ttfb_us histogram when the stream ends.
  std::int64_t opened_us = -1;
  std::int64_t first_byte_us = -1;
  std::int64_t last_byte_us = -1;
};

class CircuitOrigin {
 public:
  using BuiltFn = std::function<void(bool ok)>;
  /// Handler for relay commands the circuit core does not consume
  /// (IntroEstablished, Introduce2, RendezvousEstablished, Rendezvous2...).
  using RelayFn = std::function<void(const RelayCell& rc, int hop)>;

  /// `own_node` is the simulator node this endpoint sends from.
  CircuitOrigin(sim::Network& net, sim::NodeId own_node, Path path, CircId circ_id,
                util::Rng& rng);

  CircId circ_id() const { return circ_id_; }
  const Path& path() const { return path_; }
  bool built() const { return built_; }
  bool destroyed() const { return destroyed_; }
  int hop_count() const { return static_cast<int>(layers_.size()); }

  /// Starts the CREATE/EXTEND ladder; `done(true)` when all hops are up.
  void build(BuiltFn done);

  /// Opens a stream through the last hop to `to`. For hidden-service
  /// circuits the address part is ignored by the service; the port selects
  /// the virtual service port.
  Stream* open_stream(const Endpoint& to, Stream::Callbacks cbs);

  /// Service side: invoked for incoming RELAY_BEGIN at the virtual hop.
  /// Return false to refuse. The Stream is already connected when handed over.
  void set_stream_acceptor(std::function<bool(Stream&)> acceptor) {
    acceptor_ = std::move(acceptor);
  }

  /// Sends a relay cell to hop `hop` (default: last). Most callers use the
  /// stream API; hidden-service setup and the Cover function use this.
  void send_relay(RelayCell rc, int hop = -1);

  void set_relay_handler(RelayFn fn) { relay_handler_ = std::move(fn); }
  void set_on_destroy(std::function<void()> fn) { on_destroy_ = std::move(fn); }

  /// Client side of a rendezvous join: append the e2e layer as a virtual hop.
  void add_hop_keys(const LayerKeys& keys);
  /// Service side of a rendezvous join: terminate the e2e layer relay-style.
  void enable_virtual_relay(const LayerKeys& keys);

  /// Feed a cell addressed to this circuit (OnionProxy dispatches).
  void handle_cell(const Cell& cell);

  /// Tears down (DESTROY toward the guard) and fires stream/circuit ends.
  void destroy();

  /// Aborts an in-flight build: releases circuit and stream state first,
  /// then delivers the build callback (false) exactly once. The proxy calls
  /// this when the guard dies under a half-open circuit.
  void fail_build();

  /// Fails the build if it has not completed after `d` (0 disables). Armed
  /// when build() starts; a half-open circuit (relay crashed mid-handshake)
  /// otherwise waits forever.
  void set_build_timeout(util::Duration d) { build_timeout_ = d; }

  /// Dead-hop watchdog: once built, if forward cells go unanswered for `d`
  /// the circuit destroys itself (firing on_destroy so owners rebuild).
  /// 0 (default) disables.
  void set_liveness_timeout(util::Duration d) { liveness_timeout_ = d; }

  /// Fingerprint of the hop being negotiated when the build failed or timed
  /// out — what a rebuild should exclude. Empty when unknown.
  const std::string& failed_hop() const { return failed_hop_; }

  /// Per-circuit scoped stats: cell/byte volume plus the sim-time marks the
  /// paper's evaluation is built from (TTFB/TTLB relative to creation).
  /// Times are microseconds of sim time, -1 until the event happened.
  struct Counters {
    std::uint64_t data_cells_sent = 0;
    std::uint64_t data_cells_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::int64_t created_us = -1;
    std::int64_t built_us = -1;
    std::int64_t first_byte_us = -1;  // first DATA payload byte delivered
    std::int64_t last_byte_us = -1;   // most recent DATA payload byte
  };
  const Counters& counters() const { return counters_; }

 private:
  void continue_build();
  void dispatch_relay(const RelayCell& rc, int hop);
  void pump_stream(Stream& stream);
  void send_cell(const Cell& cell);
  void arm_build_timer();
  void poke_liveness();

  sim::Network& net_;
  sim::NodeId own_node_;
  Path path_;
  CircId circ_id_;
  util::Rng& rng_;

  std::vector<std::unique_ptr<LayerCrypto>> layers_;
  std::optional<LayerCrypto> virtual_relay_;
  std::size_t next_hop_to_build_ = 0;
  NtorClientState pending_ntor_;
  BuiltFn built_cb_;
  bool built_ = false;
  bool destroyed_ = false;

  std::map<StreamId, std::unique_ptr<Stream>> streams_;
  StreamId next_stream_id_ = 1;
  int circ_package_window_ = kCircuitWindowInit;
  int circ_delivered_ = 0;

  std::function<bool(Stream&)> acceptor_;
  RelayFn relay_handler_;
  std::function<void()> on_destroy_;
  Counters counters_;

  // Failure recovery (DESIGN.md §9). Timers capture a weak ref to alive_ so
  // a fired watchdog never touches a deleted circuit.
  util::Duration build_timeout_ = util::Duration::seconds(30);
  util::Duration liveness_timeout_{};
  bool watchdog_armed_ = false;
  bool failing_ = false;
  std::int64_t last_forward_us_ = -1;
  std::int64_t last_backward_us_ = -1;
  std::string failed_hop_;
  std::shared_ptr<char> alive_ = std::make_shared<char>('\0');

  friend class Stream;  // facade over pump_stream
};

}  // namespace bento::tor
