#include "tor/exitpolicy.hpp"

#include <sstream>
#include <stdexcept>

#include "util/serialize.hpp"

namespace bento::tor {

namespace {
std::uint32_t prefix_mask(int len) {
  if (len <= 0) return 0;
  if (len >= 32) return 0xffffffffu;
  return 0xffffffffu << (32 - len);
}
}  // namespace

bool PolicyRule::matches(const Endpoint& ep) const {
  const std::uint32_t mask = prefix_mask(prefix_len);
  if ((ep.addr & mask) != (prefix & mask)) return false;
  return ep.port >= port_lo && ep.port <= port_hi;
}

std::string PolicyRule::to_string() const {
  std::ostringstream out;
  out << (accept ? "accept " : "reject ");
  if (prefix_len == 0) {
    out << "*";
  } else {
    out << format_addr(prefix) << "/" << prefix_len;
  }
  out << ":";
  if (port_lo == 0 && port_hi == 65535) {
    out << "*";
  } else if (port_lo == port_hi) {
    out << port_lo;
  } else {
    out << port_lo << "-" << port_hi;
  }
  return out.str();
}

ExitPolicy ExitPolicy::parse(const std::string& text) {
  ExitPolicy p;
  std::string normalized = text;
  for (char& c : normalized) {
    if (c == ',') c = '\n';
  }
  std::istringstream lines(normalized);
  std::string line;
  while (std::getline(lines, line)) {
    // Trim.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);
    if (line.empty() || line[0] == '#') continue;

    PolicyRule rule;
    std::istringstream in(line);
    std::string verb, target;
    if (!(in >> verb >> target)) {
      throw std::invalid_argument("ExitPolicy: malformed rule: " + line);
    }
    if (verb == "accept") {
      rule.accept = true;
    } else if (verb == "reject") {
      rule.accept = false;
    } else {
      throw std::invalid_argument("ExitPolicy: unknown verb: " + verb);
    }
    const auto colon = target.rfind(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("ExitPolicy: missing port: " + line);
    }
    const std::string host = target.substr(0, colon);
    const std::string port = target.substr(colon + 1);
    if (host == "*") {
      rule.prefix = 0;
      rule.prefix_len = 0;
    } else {
      const auto slash = host.find('/');
      if (slash == std::string::npos) {
        rule.prefix = parse_addr(host);
        rule.prefix_len = 32;
      } else {
        rule.prefix = parse_addr(host.substr(0, slash));
        rule.prefix_len = std::stoi(host.substr(slash + 1));
        if (rule.prefix_len < 0 || rule.prefix_len > 32) {
          throw std::invalid_argument("ExitPolicy: bad prefix length: " + line);
        }
      }
    }
    if (port == "*") {
      rule.port_lo = 0;
      rule.port_hi = 65535;
    } else {
      const auto dash = port.find('-');
      auto parse_port = [&](const std::string& s) {
        const int v = std::stoi(s);
        if (v < 0 || v > 65535) {
          throw std::invalid_argument("ExitPolicy: bad port: " + line);
        }
        return static_cast<Port>(v);
      };
      if (dash == std::string::npos) {
        rule.port_lo = rule.port_hi = parse_port(port);
      } else {
        rule.port_lo = parse_port(port.substr(0, dash));
        rule.port_hi = parse_port(port.substr(dash + 1));
        if (rule.port_lo > rule.port_hi) {
          throw std::invalid_argument("ExitPolicy: inverted port range: " + line);
        }
      }
    }
    p.rules_.push_back(rule);
  }
  return p;
}

ExitPolicy ExitPolicy::accept_all() { return parse("accept *:*"); }
ExitPolicy ExitPolicy::reject_all() { return parse("reject *:*"); }

bool ExitPolicy::allows(const Endpoint& ep) const {
  for (const auto& rule : rules_) {
    if (rule.matches(ep)) return rule.accept;
  }
  return false;
}

bool ExitPolicy::allows_anything() const {
  for (const auto& rule : rules_) {
    if (rule.accept) return true;
  }
  return false;
}

std::string ExitPolicy::to_string() const {
  std::string out;
  for (const auto& rule : rules_) {
    if (!out.empty()) out += "\n";
    out += rule.to_string();
  }
  return out;
}

util::Bytes ExitPolicy::serialize() const {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(rules_.size()));
  for (const auto& r : rules_) {
    w.u8(r.accept ? 1 : 0);
    w.u32(r.prefix);
    w.u8(static_cast<std::uint8_t>(r.prefix_len));
    w.u16(r.port_lo);
    w.u16(r.port_hi);
  }
  return std::move(w).take();
}

ExitPolicy ExitPolicy::deserialize(util::ByteView data) {
  util::Reader r(data);
  ExitPolicy p;
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    PolicyRule rule;
    rule.accept = r.u8() != 0;
    rule.prefix = r.u32();
    rule.prefix_len = r.u8();
    rule.port_lo = r.u16();
    rule.port_hi = r.u16();
    p.rules_.push_back(rule);
  }
  return p;
}

}  // namespace bento::tor
