#include "tor/wire.hpp"

#include "util/serialize.hpp"

namespace bento::tor {

util::Bytes frame_cell(const Cell& cell) {
  util::Bytes out;
  out.reserve(kCellLen + 1);
  out.push_back(kCellFrameMarker);
  util::append(out, cell.pack());
  return out;
}

bool is_framed_cell(util::ByteView wire) {
  return wire.size() == kCellLen + 1 && wire[0] == kCellFrameMarker;
}

Cell unframe_cell(util::ByteView wire) {
  if (!is_framed_cell(wire)) throw util::ParseError("unframe_cell: not a cell frame");
  return Cell::unpack(wire.subspan(1));
}

}  // namespace bento::tor
