#include "tor/wire.hpp"

#include "util/annotations.hpp"
#include "util/serialize.hpp"

namespace bento::tor {

util::Bytes frame_cell(const Cell& cell) {
  // One allocation: marker + header + payload written straight into the
  // frame instead of appending a Cell::pack() temporary.
  util::Bytes out;
  out.reserve(kCellLen + 1);
  out.push_back(kCellFrameMarker);
  out.push_back(static_cast<std::uint8_t>(cell.circ_id >> 24));
  out.push_back(static_cast<std::uint8_t>(cell.circ_id >> 16));
  out.push_back(static_cast<std::uint8_t>(cell.circ_id >> 8));
  out.push_back(static_cast<std::uint8_t>(cell.circ_id));
  out.push_back(static_cast<std::uint8_t>(cell.command));
  out.insert(out.end(), cell.payload.begin(), cell.payload.end());
  return out;
}

BENTO_HOT bool is_framed_cell(util::ByteView wire) {
  return wire.size() == kCellLen + 1 && wire[0] == kCellFrameMarker;
}

BENTO_HOT Cell unframe_cell(util::ByteView wire) {
  if (!is_framed_cell(wire)) throw util::ParseError("unframe_cell: not a cell frame");
  return Cell::unpack(wire.subspan(1));
}

}  // namespace bento::tor
