#include "tor/address.hpp"

#include <sstream>
#include <stdexcept>

namespace bento::tor {

Addr parse_addr(const std::string& dotted) {
  std::istringstream in(dotted);
  Addr out = 0;
  for (int i = 0; i < 4; ++i) {
    int octet = 0;
    if (!(in >> octet) || octet < 0 || octet > 255) {
      throw std::invalid_argument("parse_addr: bad address: " + dotted);
    }
    out = (out << 8) | static_cast<Addr>(octet);
    if (i < 3) {
      char dot = 0;
      if (!(in >> dot) || dot != '.') {
        throw std::invalid_argument("parse_addr: bad address: " + dotted);
      }
    }
  }
  char extra = 0;
  if (in >> extra) throw std::invalid_argument("parse_addr: trailing junk: " + dotted);
  return out;
}

std::string format_addr(Addr a) {
  std::ostringstream out;
  out << ((a >> 24) & 0xff) << '.' << ((a >> 16) & 0xff) << '.' << ((a >> 8) & 0xff)
      << '.' << (a & 0xff);
  return out.str();
}

}  // namespace bento::tor
