#include "tor/circuit.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tor/wire.hpp"
#include "util/log.hpp"
#include "util/serialize.hpp"
#include "util/simclock.hpp"

namespace bento::tor {

namespace {
constexpr char kComponent[] = "tor.circuit";

// Registered once; every CircuitOrigin shares these handles so circuit
// construction stays free of registry lookups.
struct CircuitMetrics {
  obs::Counter built = obs::registry().counter("tor.circuits.built");
  obs::Counter destroyed = obs::registry().counter("tor.circuits.destroyed");
  obs::Counter cells_sent = obs::registry().counter("tor.origin.cells_sent");
  obs::Counter cells_received = obs::registry().counter("tor.origin.cells_received");
  obs::Histogram build_us = obs::registry().histogram("tor.circuit_build_us");
  obs::Histogram ttfb_us = obs::registry().histogram("tor.stream_ttfb_us");
};
CircuitMetrics& circuit_metrics() {
  static CircuitMetrics m;
  return m;
}
}  // namespace

void Stream::send(util::ByteView data) {
  if (circ_ == nullptr) return;
  outbuf.push(data);
  // Pumping lives in the circuit (it owns the windows).
  circ_->pump_stream(*this);
}

void Stream::end() {
  if (circ_ == nullptr) return;
  end_after_flush = true;
  circ_->pump_stream(*this);
}

CircuitOrigin::CircuitOrigin(sim::Network& net, sim::NodeId own_node, Path path,
                             CircId circ_id, util::Rng& rng)
    : net_(net), own_node_(own_node), path_(std::move(path)), circ_id_(circ_id),
      rng_(rng) {
  if (path_.empty()) throw std::invalid_argument("CircuitOrigin: empty path");
  counters_.created_us = util::sim_now_micros();
}

void CircuitOrigin::send_cell(const Cell& cell) {
  net_.send(own_node_, path_.front().node, frame_cell(cell));
}

void CircuitOrigin::build(BuiltFn done) {
  built_cb_ = std::move(done);
  next_hop_to_build_ = 0;
  const RelayDescriptor& guard = path_.front();
  const util::Bytes skin =
      ntor_client_create(pending_ntor_, guard.onion_key, guard.identity_key, rng_);
  Cell create;
  create.circ_id = circ_id_;
  create.command = CellCommand::Create;
  create.set_payload(skin);
  send_cell(create);
  arm_build_timer();
}

void CircuitOrigin::continue_build() {
  if (next_hop_to_build_ >= path_.size()) {
    built_ = true;
    counters_.built_us = util::sim_now_micros();
    CircuitMetrics& m = circuit_metrics();
    m.built.inc();
    if (counters_.created_us >= 0 && counters_.built_us >= 0) {
      m.build_us.record(counters_.built_us - counters_.created_us);
    }
    obs::trace(obs::Ev::CircBuilt, circ_id_,
               static_cast<std::uint64_t>(hop_count()));
    if (built_cb_) {
      auto cb = std::move(built_cb_);
      built_cb_ = nullptr;
      cb(true);
    }
    return;
  }
  // Extend to the next hop through the ones already built.
  const RelayDescriptor& target = path_[next_hop_to_build_];
  const util::Bytes skin =
      ntor_client_create(pending_ntor_, target.onion_key, target.identity_key, rng_);
  RelayCell extend;
  extend.relay_cmd = RelayCommand::Extend;
  util::Writer w;
  w.str(target.fingerprint());
  w.blob(skin);
  extend.data = std::move(w).take();
  send_relay(std::move(extend), static_cast<int>(next_hop_to_build_) - 1);
}

void CircuitOrigin::fail_build() {
  if (failing_) return;  // destroy() below can re-enter via callbacks
  failing_ = true;
  if (failed_hop_.empty() && !path_.empty()) {
    const std::size_t idx =
        next_hop_to_build_ < path_.size() ? next_hop_to_build_ : path_.size() - 1;
    failed_hop_ = path_[idx].fingerprint();
  }
  // Release circuit + stream state first so the waiter observes a fully
  // torn-down circuit, then deliver the failure exactly once.
  auto cb = std::move(built_cb_);
  built_cb_ = nullptr;
  destroy();
  if (cb) cb(false);
  failing_ = false;
}

void CircuitOrigin::arm_build_timer() {
  if (build_timeout_.count_micros() <= 0) return;
  std::weak_ptr<char> alive = alive_;
  net_.simulator().after(build_timeout_, [this, alive] {
    if (alive.expired() || built_ || destroyed_) return;
    util::log_warn(kComponent, "build timeout on circuit ", circ_id_,
                   " at hop ", next_hop_to_build_);
    fail_build();
  });
}

void CircuitOrigin::poke_liveness() {
  if (!built_ || destroyed_ || watchdog_armed_ ||
      liveness_timeout_.count_micros() <= 0) {
    return;
  }
  watchdog_armed_ = true;
  std::weak_ptr<char> alive = alive_;
  net_.simulator().after(liveness_timeout_, [this, alive] {
    if (alive.expired()) return;
    watchdog_armed_ = false;
    if (destroyed_) return;
    const bool awaiting = last_forward_us_ > last_backward_us_;
    if (!awaiting) return;  // answered since; next send re-arms
    const std::int64_t now = util::sim_now_micros();
    if (now - last_forward_us_ >= liveness_timeout_.count_micros()) {
      util::log_warn(kComponent, "liveness timeout on circuit ", circ_id_);
      destroy();
      return;
    }
    poke_liveness();
  });
}

void CircuitOrigin::handle_cell(const Cell& cell) {
  if (destroyed_) return;
  last_backward_us_ = util::sim_now_micros();
  switch (cell.command) {
    case CellCommand::Created: {
      util::ByteView reply(cell.payload.data(), kNtorReplyLen);
      auto keys = ntor_client_finish(pending_ntor_, reply);
      if (!keys.has_value()) {
        util::log_warn(kComponent, "handshake authentication failed at hop 0");
        fail_build();
        return;
      }
      layers_.push_back(std::make_unique<LayerCrypto>(*keys));
      obs::trace(obs::Ev::CircExtend, circ_id_, 0);
      next_hop_to_build_ = 1;
      continue_build();
      return;
    }
    case CellCommand::Relay: {
      circuit_metrics().cells_received.inc();
      obs::trace(obs::Ev::CellRecv, circ_id_, 0);
      auto payload = cell.payload;
      for (std::size_t i = 0; i < layers_.size(); ++i) {
        layers_[i]->crypt_backward(payload);
        if (layers_[i]->check_backward(payload)) {
          RelayCell rc;
          try {
            rc = RelayCell::unpack(payload);
          } catch (const util::ParseError&) {
            destroy();
            return;
          }
          dispatch_relay(rc, static_cast<int>(i));
          return;
        }
      }
      if (virtual_relay_.has_value()) {
        virtual_relay_->crypt_forward(payload);
        if (virtual_relay_->check_forward(payload)) {
          RelayCell rc;
          try {
            rc = RelayCell::unpack(payload);
          } catch (const util::ParseError&) {
            destroy();
            return;
          }
          dispatch_relay(rc, hop_count());  // virtual hop index
          return;
        }
      }
      util::log_warn(kComponent, "unrecognized backward cell on circuit ", circ_id_);
      return;
    }
    case CellCommand::Destroy: {
      destroyed_ = true;
      circuit_metrics().destroyed.inc();
      obs::trace(obs::Ev::CircTeardown, circ_id_, 1);  // b=1: remote destroy
      if (!built_ && failed_hop_.empty() && !path_.empty()) {
        const std::size_t idx = next_hop_to_build_ < path_.size()
                                    ? next_hop_to_build_
                                    : path_.size() - 1;
        failed_hop_ = path_[idx].fingerprint();
      }
      // Callbacks may touch the stream map; detach it first.
      auto doomed = std::move(streams_);
      streams_.clear();
      for (auto& [sid, stream] : doomed) {
        stream->circ_ = nullptr;
        if (stream->cbs_.on_end) stream->cbs_.on_end();
      }
      if (built_cb_) {
        auto cb = std::move(built_cb_);
        built_cb_ = nullptr;
        cb(false);
      }
      if (on_destroy_) on_destroy_();
      return;
    }
    default:
      break;
  }
}

void CircuitOrigin::send_relay(RelayCell rc, int hop) {
  if (destroyed_) return;
  last_forward_us_ = util::sim_now_micros();
  poke_liveness();
  circuit_metrics().cells_sent.inc();
  obs::trace(obs::Ev::CellSend, circ_id_,
             static_cast<std::uint64_t>(rc.relay_cmd));
  if (virtual_relay_.has_value()) {
    // Service side: seal at the virtual layer (relay-style, backward
    // digest), then wrap in every real hop's forward keystream without
    // sealing — no real hop recognizes the cell; the rendezvous point
    // splices it through to the client.
    auto payload = rc.pack();
    virtual_relay_->seal_backward(payload);
    virtual_relay_->crypt_backward(payload);
    for (std::size_t i = layers_.size(); i-- > 0;) {
      layers_[i]->crypt_forward(payload);
    }
    Cell cell;
    cell.circ_id = circ_id_;
    cell.command = CellCommand::Relay;
    cell.payload = payload;
    send_cell(cell);
    return;
  }
  const int last = hop_count() - 1;
  if (hop < 0) hop = last;
  if (hop > last || hop < 0) {
    throw std::invalid_argument("send_relay: bad hop index");
  }
  auto payload = rc.pack();
  layers_[static_cast<std::size_t>(hop)]->seal_forward(payload);
  for (int i = hop; i >= 0; --i) {
    layers_[static_cast<std::size_t>(i)]->crypt_forward(payload);
  }
  Cell cell;
  cell.circ_id = circ_id_;
  cell.command = CellCommand::Relay;
  cell.payload = payload;
  send_cell(cell);
}

void CircuitOrigin::add_hop_keys(const LayerKeys& keys) {
  layers_.push_back(std::make_unique<LayerCrypto>(keys));
}

void CircuitOrigin::enable_virtual_relay(const LayerKeys& keys) {
  virtual_relay_.emplace(keys);
}

Stream* CircuitOrigin::open_stream(const Endpoint& to, Stream::Callbacks cbs) {
  if (!built_) throw std::logic_error("open_stream: circuit not built");
  const StreamId sid = next_stream_id_++;
  auto stream = std::make_unique<Stream>();
  stream->circ_ = this;
  stream->id_ = sid;
  stream->cbs_ = std::move(cbs);
  stream->opened_us = util::sim_now_micros();
  Stream* out = stream.get();
  streams_[sid] = std::move(stream);
  obs::trace(obs::Ev::StreamOpen, circ_id_, sid);

  RelayCell begin;
  begin.relay_cmd = RelayCommand::Begin;
  begin.stream_id = sid;
  util::Writer w;
  w.u32(to.addr);
  w.u16(to.port);
  begin.data = std::move(w).take();
  send_relay(std::move(begin));
  return out;
}

void CircuitOrigin::pump_stream(Stream& stream) {
  while (!stream.outbuf.empty() && stream.package_window > 0 &&
         circ_package_window_ > 0) {
    RelayCell data;
    data.relay_cmd = RelayCommand::Data;
    data.stream_id = stream.id_;
    data.data = stream.outbuf.pop(kRelayDataMax);
    stream.package_window--;
    circ_package_window_--;
    counters_.data_cells_sent++;
    counters_.bytes_sent += data.data.size();
    send_relay(std::move(data));
  }
  if (stream.outbuf.empty() && stream.end_after_flush) {
    RelayCell end;
    end.relay_cmd = RelayCommand::End;
    end.stream_id = stream.id_;
    send_relay(std::move(end));
    stream.circ_ = nullptr;
    streams_.erase(stream.id_);  // invalidates `stream`
  }
}

void CircuitOrigin::dispatch_relay(const RelayCell& rc, int hop) {
  switch (rc.relay_cmd) {
    case RelayCommand::Extended: {
      auto keys = ntor_client_finish(pending_ntor_, rc.data);
      if (!keys.has_value()) {
        util::log_warn(kComponent, "handshake authentication failed at hop ",
                       next_hop_to_build_);
        fail_build();
        return;
      }
      layers_.push_back(std::make_unique<LayerCrypto>(*keys));
      obs::trace(obs::Ev::CircExtend, circ_id_, next_hop_to_build_);
      next_hop_to_build_++;
      continue_build();
      return;
    }
    case RelayCommand::Connected: {
      auto it = streams_.find(rc.stream_id);
      if (it == streams_.end()) return;
      it->second->connected_ = true;
      if (it->second->cbs_.on_connected) it->second->cbs_.on_connected();
      return;
    }
    case RelayCommand::Data: {
      counters_.data_cells_received++;
      counters_.bytes_received += rc.data.size();
      const std::int64_t now_us = util::sim_now_micros();
      if (counters_.first_byte_us < 0) counters_.first_byte_us = now_us;
      counters_.last_byte_us = now_us;
      circ_delivered_++;
      if (circ_delivered_ % kCircuitWindowIncrement == 0) {
        RelayCell sendme;
        sendme.relay_cmd = RelayCommand::SendmeCircuit;
        send_relay(std::move(sendme), hop);
      }
      auto it = streams_.find(rc.stream_id);
      if (it == streams_.end()) return;
      Stream& stream = *it->second;
      if (stream.first_byte_us < 0) {
        stream.first_byte_us = now_us;
        if (stream.opened_us >= 0) {
          circuit_metrics().ttfb_us.record(now_us - stream.opened_us);
          obs::trace(obs::Ev::StreamTtfb, circ_id_,
                     static_cast<std::uint64_t>(now_us - stream.opened_us));
        }
      }
      stream.last_byte_us = now_us;
      stream.delivered++;
      if (stream.delivered % kStreamWindowIncrement == 0) {
        RelayCell sendme;
        sendme.relay_cmd = RelayCommand::SendmeStream;
        sendme.stream_id = rc.stream_id;
        send_relay(std::move(sendme), hop);
      }
      if (stream.cbs_.on_data) stream.cbs_.on_data(rc.data);
      return;
    }
    case RelayCommand::End: {
      auto it = streams_.find(rc.stream_id);
      if (it == streams_.end()) return;
      auto stream = std::move(it->second);
      streams_.erase(it);
      stream->circ_ = nullptr;
      if (stream->opened_us >= 0 && stream->last_byte_us >= 0) {
        obs::trace(obs::Ev::StreamTtlb, circ_id_,
                   static_cast<std::uint64_t>(stream->last_byte_us -
                                              stream->opened_us));
      }
      if (stream->cbs_.on_end) stream->cbs_.on_end();
      return;
    }
    case RelayCommand::SendmeCircuit: {
      circ_package_window_ += kCircuitWindowIncrement;
      // Pump round-robin; collect ids first because pumping may erase.
      std::vector<StreamId> ids;
      ids.reserve(streams_.size());
      for (auto& [sid, s] : streams_) ids.push_back(sid);
      for (StreamId sid : ids) {
        auto it = streams_.find(sid);
        if (it != streams_.end()) pump_stream(*it->second);
      }
      return;
    }
    case RelayCommand::SendmeStream: {
      auto it = streams_.find(rc.stream_id);
      if (it == streams_.end()) return;
      it->second->package_window += kStreamWindowIncrement;
      pump_stream(*it->second);
      return;
    }
    case RelayCommand::Begin: {
      // Service side (virtual hop): accept or refuse.
      if (!acceptor_ || rc.stream_id == 0 || streams_.contains(rc.stream_id)) {
        RelayCell end;
        end.relay_cmd = RelayCommand::End;
        end.stream_id = rc.stream_id;
        send_relay(std::move(end), hop);
        return;
      }
      auto stream = std::make_unique<Stream>();
      stream->circ_ = this;
      stream->id_ = rc.stream_id;
      stream->connected_ = true;
      Stream* raw = stream.get();
      streams_[rc.stream_id] = std::move(stream);
      if (!acceptor_(*raw)) {
        streams_.erase(rc.stream_id);
        RelayCell end;
        end.relay_cmd = RelayCommand::End;
        end.stream_id = rc.stream_id;
        send_relay(std::move(end), hop);
        return;
      }
      RelayCell connected;
      connected.relay_cmd = RelayCommand::Connected;
      connected.stream_id = rc.stream_id;
      send_relay(std::move(connected), hop);
      return;
    }
    default:
      if (relay_handler_) relay_handler_(rc, hop);
      return;
  }
}

void CircuitOrigin::destroy() {
  if (destroyed_) return;
  destroyed_ = true;
  circuit_metrics().destroyed.inc();
  obs::trace(obs::Ev::CircTeardown, circ_id_, 0);  // b=0: local teardown
  Cell destroy_cell;
  destroy_cell.circ_id = circ_id_;
  destroy_cell.command = CellCommand::Destroy;
  send_cell(destroy_cell);
  auto doomed = std::move(streams_);
  streams_.clear();
  for (auto& [sid, stream] : doomed) {
    stream->circ_ = nullptr;
    if (stream->cbs_.on_end) stream->cbs_.on_end();
  }
  if (on_destroy_) on_destroy_();
}

}  // namespace bento::tor
