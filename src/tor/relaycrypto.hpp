// Onion layer crypto for RELAY cells (tor-spec §5.5, §6.1).
//
// Each hop of a circuit shares LayerKeys with the origin, produced by the
// ntor handshake. Forward cells (origin -> exit) are encrypted by the origin
// once per hop, outermost layer last, and peeled one layer per relay.
// Backward cells accrete one layer per relay and are peeled by the origin.
//
// "Recognition" follows Tor: after removing a layer, a cell is for this hop
// iff the `recognized` field is zero AND the 4-byte digest matches a running
// SHA-256 over every relay payload exchanged with this hop (with the digest
// field zeroed). The running digest also provides in-order integrity: any
// reordering/tampering desynchronizes it permanently.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"
#include "tor/cell.hpp"
#include "util/bytes.hpp"

namespace bento::tor {

/// Key material for one hop, derived from the handshake shared secret.
struct LayerKeys {
  crypto::ChaChaKey kf{};  // forward cipher key
  crypto::ChaChaKey kb{};  // backward cipher key
  crypto::Digest df{};     // forward digest seed
  crypto::Digest db{};     // backward digest seed

  /// HKDF(secret, info=label) -> 128 bytes split into kf|kb|df|db.
  static LayerKeys derive(util::ByteView secret, std::string_view label);
};

/// Stateful per-hop crypto. The origin holds one per hop; the relay holds
/// one. Stream-cipher and digest state advance in lockstep on both sides
/// because every forward cell traverses (and is transformed by) every hop
/// before it, in order.
class LayerCrypto {
 public:
  explicit LayerCrypto(const LayerKeys& keys);

  /// XORs the forward keystream over a payload (encrypt at origin / peel at
  /// the relay — identical operation).
  void crypt_forward(std::array<std::uint8_t, kCellPayloadLen>& payload);
  /// Same for the backward direction.
  void crypt_backward(std::array<std::uint8_t, kCellPayloadLen>& payload);

  /// Origin, sending to this hop: writes the digest field of a payload whose
  /// digest bytes are currently zero, committing the running forward digest.
  void seal_forward(std::array<std::uint8_t, kCellPayloadLen>& payload);
  /// Relay, sending toward the origin: same for the backward digest.
  void seal_backward(std::array<std::uint8_t, kCellPayloadLen>& payload);

  /// Relay side: checks recognition of a just-peeled forward payload.
  /// Commits the running digest on success; leaves state untouched on
  /// failure (the cell belongs to a later hop).
  bool check_forward(std::array<std::uint8_t, kCellPayloadLen>& payload);
  /// Origin side: same for a backward payload.
  bool check_backward(std::array<std::uint8_t, kCellPayloadLen>& payload);

 private:
  static void seal(crypto::Sha256& running,
                   std::array<std::uint8_t, kCellPayloadLen>& payload);
  static bool check(crypto::Sha256& running,
                    std::array<std::uint8_t, kCellPayloadLen>& payload);

  crypto::ChaCha20 fwd_cipher_;
  crypto::ChaCha20 bwd_cipher_;
  crypto::Sha256 fwd_digest_;
  crypto::Sha256 bwd_digest_;
};

}  // namespace bento::tor
