#include <gtest/gtest.h>

#include <stdexcept>

#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/time.hpp"

namespace bu = bento::util;

TEST(Bytes, HexRoundTrip) {
  bu::Bytes b = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x7f};
  EXPECT_EQ(bu::to_hex(b), "deadbeef007f");
  EXPECT_EQ(bu::from_hex("deadbeef007f"), b);
  EXPECT_EQ(bu::from_hex("DEADBEEF007F"), b);
}

TEST(Bytes, HexRejectsBadInput) {
  EXPECT_THROW(bu::from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(bu::from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, EmptyHex) {
  EXPECT_EQ(bu::to_hex({}), "");
  EXPECT_TRUE(bu::from_hex("").empty());
}

TEST(Bytes, Concat) {
  bu::Bytes a = bu::to_bytes("ab");
  bu::Bytes b = bu::to_bytes("cd");
  EXPECT_EQ(bu::to_string(bu::concat({a, b})), "abcd");
}

TEST(Bytes, CtEqual) {
  bu::Bytes a = bu::to_bytes("secret");
  bu::Bytes b = bu::to_bytes("secret");
  bu::Bytes c = bu::to_bytes("secreT");
  EXPECT_TRUE(bu::ct_equal(a, b));
  EXPECT_FALSE(bu::ct_equal(a, c));
  EXPECT_FALSE(bu::ct_equal(a, bu::to_bytes("secre")));
}

TEST(Bytes, XorBytes) {
  bu::Bytes a = {0xff, 0x00, 0x55};
  bu::Bytes b = {0x0f, 0xf0, 0x55};
  bu::Bytes want = {0xf0, 0xf0, 0x00};
  EXPECT_EQ(bu::xor_bytes(a, b), want);
  EXPECT_THROW(bu::xor_bytes(a, bu::Bytes{0x01}), std::invalid_argument);
}

TEST(Rng, Deterministic) {
  bu::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  bu::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformBounds) {
  bu::Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = r.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
  EXPECT_EQ(r.uniform(5, 5), 5u);
  EXPECT_THROW(r.uniform(6, 5), std::invalid_argument);
}

TEST(Rng, Uniform01InRange) {
  bu::Rng r(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = r.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  bu::Rng r(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = r.gaussian(3.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Rng, WeightedIndex) {
  bu::Rng r(13);
  std::vector<double> w = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) counts[r.weighted_index(w)]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
  EXPECT_THROW(r.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(r.weighted_index({-1.0, 2.0}), std::invalid_argument);
}

TEST(Rng, BytesLengthAndDeterminism) {
  bu::Rng a(99), b(99);
  EXPECT_EQ(a.bytes(33).size(), 33u);
  bu::Rng c(99);
  EXPECT_EQ(b.bytes(10), c.bytes(10));
}

TEST(Rng, ForkIndependent) {
  bu::Rng a(5);
  bu::Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Serialize, IntsRoundTrip) {
  bu::Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ULL);
  bu::Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, BigEndianLayout) {
  bu::Writer w;
  w.u16(0x0102);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[1], 0x02);
}

TEST(Serialize, BlobAndString) {
  bu::Writer w;
  w.blob(bu::to_bytes("hello"));
  w.str("world!");
  bu::Reader r(w.data());
  EXPECT_EQ(bu::to_string(r.blob()), "hello");
  EXPECT_EQ(r.str(), "world!");
  r.expect_done();
}

TEST(Serialize, TruncatedThrows) {
  bu::Writer w;
  w.u32(7);
  bu::Reader r(w.data());
  r.u16();
  EXPECT_THROW(r.u32(), bu::ParseError);
}

TEST(Serialize, TrailingBytesDetected) {
  bu::Writer w;
  w.u8(1);
  w.u8(2);
  bu::Reader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_done(), bu::ParseError);
}

TEST(Serialize, VarintRoundTrip) {
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 16383, 16384,
                                  0xffffffffULL, UINT64_MAX};
  for (auto v : values) {
    bu::Writer w;
    w.varint(v);
    bu::Reader r(w.data());
    EXPECT_EQ(r.varint(), v) << v;
    EXPECT_TRUE(r.done());
  }
}

TEST(Time, Arithmetic) {
  using bu::Duration;
  using bu::Time;
  Time t = Time::from_seconds(1.5);
  t = t + Duration::millis(500);
  EXPECT_EQ(t.micros(), 2'000'000);
  EXPECT_DOUBLE_EQ((t - Time::from_micros(0)).to_seconds(), 2.0);
  EXPECT_LT(Time::from_seconds(1), Time::from_seconds(2));
  EXPECT_EQ((Duration::seconds(2) * 0.5).count_micros(), 1'000'000);
}
