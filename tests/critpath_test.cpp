// Critical-path attribution suite (DESIGN.md §14). Three layers:
//
//  1. Synthetic CritInput units pin the sweep semantics exactly: deepest
//     active span wins, link time splits into chaos/transit/queue against
//     the budget notes, waits after a shard.barrier become mailbox waits,
//     and every blame vector sums to the request's measured duration.
//  2. An end-to-end 4-region forwarding harness (client -> three relays in
//     three other regions -> client, root span per session) proves the
//     acceptance contract: critpath text and JSON byte-identical at shard
//     counts {1, 2, 4}, and per-request total_us equal to the harness's own
//     measured round-trip, joined on the root's kNoteRef.
//  3. The same harness under a chaos Throttle plan: the injected slowdown
//     must surface as the dominant blame segment ("chaos_dwell", majority
//     share), which is the tool's whole reason to exist.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bentotrace/critpath.hpp"
#include "bentotrace/reader.hpp"
#include "chaos/chaos.hpp"
#include "obs/critpath.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/simclock.hpp"

namespace bc = bento::chaos;
namespace bo = bento::obs;
namespace bs = bento::sim;
namespace bt = bento::tools;
namespace bu = bento::util;

using bu::Duration;
using bu::Time;

namespace {

bo::CritSpan span(std::uint32_t id, std::uint32_t parent, bo::Stage stage,
                  std::int64_t begin, std::int64_t end) {
  bo::CritSpan s;
  s.id = id;
  s.parent = parent;
  s.stage = stage;
  s.begin_us = begin;
  s.end_us = end;
  return s;
}

std::int64_t seg_us(const bo::RequestBlame& req, bo::Stage stage,
                    bo::SegKind kind) {
  std::int64_t total = 0;
  for (const bo::BlameSeg& s : req.segs) {
    if (s.stage == stage && s.kind == kind) total += s.us;
  }
  return total;
}

std::int64_t sum_segs(const bo::RequestBlame& req) {
  std::int64_t total = 0;
  for (const bo::BlameSeg& s : req.segs) total += s.us;
  return total;
}

}  // namespace

TEST(CritPath, SegmentNamesAreStable) {
  EXPECT_EQ(bo::segment_name(bo::Stage::NetLink, bo::SegKind::LinkQueue),
            "net_link_queue");
  EXPECT_EQ(bo::segment_name(bo::Stage::NetLink, bo::SegKind::LinkTransit),
            "net_link_transit");
  EXPECT_EQ(bo::segment_name(bo::Stage::ClientInvoke, bo::SegKind::Exec),
            "client_invoke");
  EXPECT_EQ(bo::segment_name(bo::Stage::ClientInvoke, bo::SegKind::Wait),
            "client_invoke_wait");
  EXPECT_EQ(
      bo::segment_name(bo::Stage::RelayForward, bo::SegKind::MailboxWait),
      "relay_forward_mailbox_wait");
  // Chaos dwell is stage-free: throttled serialization on any link is the
  // same phenomenon.
  EXPECT_EQ(bo::segment_name(bo::Stage::NetLink, bo::SegKind::ChaosDwell),
            "chaos_dwell");
}

TEST(CritPath, BlameSumsToRootDurationWithLinkSplit) {
  // root [0,100] -> link1 [0,40] (idle 30); zero-length relay.forward at 40
  // whose child link2 [40,90] (idle 45) outlives it; tail [90,100] is the
  // root waiting on the final delivery.
  bo::CritInput in;
  in.spans.push_back(span(1, 0, bo::Stage::ClientInvoke, 0, 100));
  in.spans.back().ref = 7;
  in.spans.push_back(span(2, 1, bo::Stage::NetLink, 0, 40));
  in.spans.back().idle_us = 30;
  in.spans.push_back(span(3, 1, bo::Stage::RelayForward, 40, 40));
  in.spans.push_back(span(4, 3, bo::Stage::NetLink, 40, 90));
  in.spans.back().idle_us = 45;

  const bo::CritReport report = bo::compute_critical_paths(in);
  ASSERT_EQ(report.requests.size(), 1u);
  EXPECT_EQ(report.incomplete, 0u);
  const bo::RequestBlame& req = report.requests[0];
  EXPECT_EQ(req.root_id, 1u);
  EXPECT_EQ(req.ref, 7u);
  EXPECT_EQ(req.total_us, 100);
  EXPECT_EQ(sum_segs(req), req.total_us) << "100% attribution is the contract";
  // Links: transit = idle budget, queue = the contention remainder.
  EXPECT_EQ(seg_us(req, bo::Stage::NetLink, bo::SegKind::LinkTransit), 75);
  EXPECT_EQ(seg_us(req, bo::Stage::NetLink, bo::SegKind::LinkQueue), 15);
  // The tail is root wait (its first child began at t=0, long before 90).
  EXPECT_EQ(seg_us(req, bo::Stage::ClientInvoke, bo::SegKind::Wait), 10);
  // Zero-length relay.forward cannot win any interval.
  EXPECT_EQ(seg_us(req, bo::Stage::RelayForward, bo::SegKind::Exec), 0);
  // Vector is sorted by (stage, kind, region).
  for (std::size_t i = 1; i < req.segs.size(); ++i) {
    const auto key = [](const bo::BlameSeg& s) {
      return std::tuple(s.stage, s.kind, s.region);
    };
    EXPECT_LT(key(req.segs[i - 1]), key(req.segs[i]));
  }
}

TEST(CritPath, BarrierTurnsWaitIntoMailboxWait) {
  // root [0,100], child link [0,40]; a shard.barrier closes at 95, so the
  // root's wait [40,100] splits into plain wait [40,95) and mailbox wait
  // [95,100) — the request resumed via a cross-shard window.
  bo::CritInput in;
  in.spans.push_back(span(1, 0, bo::Stage::ClientInvoke, 0, 100));
  in.spans.push_back(span(2, 1, bo::Stage::NetLink, 0, 40));
  in.spans.back().idle_us = 40;
  in.barriers_us = {95};

  const bo::CritReport report = bo::compute_critical_paths(in);
  ASSERT_EQ(report.requests.size(), 1u);
  const bo::RequestBlame& req = report.requests[0];
  EXPECT_EQ(sum_segs(req), 100);
  EXPECT_EQ(seg_us(req, bo::Stage::ClientInvoke, bo::SegKind::Wait), 55);
  EXPECT_EQ(seg_us(req, bo::Stage::ClientInvoke, bo::SegKind::MailboxWait), 5);
}

TEST(CritPath, ChaosDwellComesOffTheTopOfLinkTime) {
  // Link attributed 40 µs with idle budget 30 and chaos dwell 15: chaos is
  // taken first (15), transit gets what the budget still fits (25), queue 0.
  bo::CritInput in;
  in.spans.push_back(span(1, 0, bo::Stage::ClientInvoke, 0, 40));
  in.spans.push_back(span(2, 1, bo::Stage::NetLink, 0, 40));
  in.spans.back().idle_us = 30;
  in.spans.back().chaos_us = 15;

  const bo::CritReport report = bo::compute_critical_paths(in);
  ASSERT_EQ(report.requests.size(), 1u);
  const bo::RequestBlame& req = report.requests[0];
  EXPECT_EQ(seg_us(req, bo::Stage::NetLink, bo::SegKind::ChaosDwell), 15);
  EXPECT_EQ(seg_us(req, bo::Stage::NetLink, bo::SegKind::LinkTransit), 25);
  EXPECT_EQ(seg_us(req, bo::Stage::NetLink, bo::SegKind::LinkQueue), 0);
  EXPECT_EQ(sum_segs(req), 40);

  // Dwell larger than the attributed interval clamps: never blame more
  // microseconds than the path actually spent.
  bo::CritInput clamp;
  clamp.spans.push_back(span(1, 0, bo::Stage::ClientInvoke, 0, 10));
  clamp.spans.push_back(span(2, 1, bo::Stage::NetLink, 0, 10));
  clamp.spans.back().idle_us = 30;
  clamp.spans.back().chaos_us = 50;
  const bo::CritReport clamped = bo::compute_critical_paths(clamp);
  ASSERT_EQ(clamped.requests.size(), 1u);
  EXPECT_EQ(seg_us(clamped.requests[0], bo::Stage::NetLink,
                   bo::SegKind::ChaosDwell),
            10);
  EXPECT_EQ(sum_segs(clamped.requests[0]), 10);
}

TEST(CritPath, IncompleteRootsAreCountedNotAttributed) {
  bo::CritInput in;
  in.spans.push_back(span(1, 0, bo::Stage::ClientInvoke, 0, -1));  // no end
  in.spans.push_back(span(2, 0, bo::Stage::ClientInvoke, -1, 50));  // no begin
  in.spans.push_back(span(3, 0, bo::Stage::ClientInvoke, 10, 30));
  const bo::CritReport report = bo::compute_critical_paths(in);
  EXPECT_EQ(report.incomplete, 2u);
  ASSERT_EQ(report.requests.size(), 1u);
  EXPECT_EQ(report.requests[0].root_id, 3u);
  EXPECT_EQ(report.requests[0].total_us, 20);
}

TEST(CritPath, SloSeriesCarryOneSamplePerRequest) {
  // Two requests; only the first has queue time. The series must still give
  // both requests a sample (0 for the second) so percentiles are per-request.
  bo::CritInput in;
  in.spans.push_back(span(1, 0, bo::Stage::ClientInvoke, 0, 100));
  in.spans.push_back(span(2, 1, bo::Stage::NetLink, 0, 100));
  in.spans.back().idle_us = 60;
  in.spans.push_back(span(5, 0, bo::Stage::ClientInvoke, 200, 250));
  in.spans.push_back(span(6, 5, bo::Stage::NetLink, 200, 250));
  in.spans.back().idle_us = 50;

  const bo::CritReport report = bo::compute_critical_paths(in);
  bo::SloInput input;
  bo::add_critpath_series(report, input);
  ASSERT_EQ(input.series.at("critpath.total_us").size(), 2u);
  EXPECT_EQ(input.series.at("critpath.total_us")[0], 100);
  EXPECT_EQ(input.series.at("critpath.total_us")[1], 50);
  ASSERT_EQ(input.series.at("critpath.net_link_queue_us").size(), 2u);
  EXPECT_EQ(input.series.at("critpath.net_link_queue_us")[0], 40);
  EXPECT_EQ(input.series.at("critpath.net_link_queue_us")[1], 0);
  ASSERT_EQ(input.series.at("critpath.net_link_transit_us").size(), 2u);
  EXPECT_EQ(input.series.at("critpath.net_link_transit_us")[0], 60);
  EXPECT_EQ(input.series.at("critpath.net_link_transit_us")[1], 50);
}

TEST(CritPath, DiffFlagsRegressionsAboveThresholdAndFloor) {
  const auto profile_with = [](std::int64_t mean, std::int64_t tail) {
    bo::BlameProfile p;
    p.requests = 10;
    bo::BlameProfile::Row row;
    row.seg = "net_link_queue";
    row.region = -1;
    row.requests = 10;
    row.mean_us = mean;
    row.body_mean_us = mean;
    row.tail_mean_us = tail;
    row.total_us = mean * 10;
    p.rows.push_back(row);
    return p;
  };
  // +100 µs on a 1000 µs mean = +10%: not *more than* 10%, so ok.
  const bo::BlameDiff at_edge = bo::diff_blame(profile_with(1000, 1000),
                                               profile_with(1100, 1100), 10, 50);
  EXPECT_FALSE(at_edge.regressed());
  // +200 µs = +20%: regressed, on the overall mean.
  const bo::BlameDiff over = bo::diff_blame(profile_with(1000, 1000),
                                            profile_with(1200, 1000), 10, 50);
  EXPECT_TRUE(over.regressed());
  // Tail-only regression is still a regression.
  const bo::BlameDiff tail = bo::diff_blame(profile_with(1000, 1000),
                                            profile_with(1000, 1500), 10, 50);
  EXPECT_TRUE(tail.regressed());
  // Large relative growth under the absolute floor stays quiet (noise gate).
  const bo::BlameDiff tiny = bo::diff_blame(profile_with(10, 10),
                                            profile_with(40, 40), 10, 50);
  EXPECT_FALSE(tiny.regressed());
  // Output shape: verdict string flips with the result.
  EXPECT_NE(over.to_json().find("\"verdict\":\"fail\""), std::string::npos);
  EXPECT_NE(at_edge.to_json().find("\"verdict\":\"pass\""), std::string::npos);
  EXPECT_NE(over.to_string().find("REGRESSED"), std::string::npos);
}

namespace {

// ---------------------------------------------------------------------------
// End-to-end harness: a client in region 0 sends a cell around a fixed
// 4-region loop (guard r1, middle r2, exit r3, back to the client). Each
// session opens a root ClientInvoke span whose id rides in the cell (bytes
// [1..4]); relays wrap their forward in a RelayForward span; the client ends
// the root at delivery — root duration == the measured round-trip, exactly.

constexpr std::size_t kCellBytes = 600;

std::uint32_t get_u32(const bu::Bytes& b, std::size_t at) {
  return static_cast<std::uint32_t>(b[at]) |
         static_cast<std::uint32_t>(b[at + 1]) << 8 |
         static_cast<std::uint32_t>(b[at + 2]) << 16 |
         static_cast<std::uint32_t>(b[at + 3]) << 24;
}

void put_u32(bu::Bytes& b, std::size_t at, std::uint32_t v) {
  b[at] = static_cast<std::uint8_t>(v);
  b[at + 1] = static_cast<std::uint8_t>(v >> 8);
  b[at + 2] = static_cast<std::uint8_t>(v >> 16);
  b[at + 3] = static_cast<std::uint8_t>(v >> 24);
}

/// Forwards every cell to `next` inside a RelayForward span.
class LoopRelay : public bs::MessageHandler {
 public:
  bs::Network* net = nullptr;
  bs::NodeId self = bs::kInvalidNode;
  bs::NodeId next = bs::kInvalidNode;

  void on_message(bs::NodeId, bu::Bytes data) override {
    bo::SpanScope span(bo::Stage::RelayForward, self);
    net->send(self, next, std::move(data));
  }
};

/// Terminus: ends the root span and records the measured round-trip.
class LoopClient : public bs::MessageHandler {
 public:
  // session ref (kNoteRef value) -> measured end-to-end sim µs.
  std::map<std::uint32_t, std::int64_t> measured;
  std::map<std::uint32_t, std::int64_t> sent_at;

  void on_message(bs::NodeId, bu::Bytes data) override {
    const std::uint32_t root = get_u32(data, 1);
    const std::uint32_t ref = get_u32(data, 5);
    measured[ref] = bu::sim_now_micros() - sent_at[ref];
    bo::end_span(root, bo::Stage::ClientInvoke);
  }
};

struct LoopCapture {
  std::string jsonl;
  std::string critpath_text;
  std::string critpath_json;
  bo::CritReport report;
  std::map<std::uint32_t, std::int64_t> measured;  // ref -> sim µs
};

/// One fixed-seed run of `sessions` loop round-trips, launched in bursts of
/// `burst` sharing a start instant, bursts `spacing_us` apart; optional
/// chaos plan. Bursts create link-queue contention; a burst of 1 with wide
/// spacing keeps the loop uncontended so fault dwell stands alone.
LoopCapture run_loop(std::uint64_t seed, unsigned shards, int sessions,
                     int burst, std::int64_t spacing_us,
                     const bc::ChaosPlan* plan) {
  LoopCapture cap;
  bo::recorder().enable(std::size_t{1} << 16);
  {
    bs::Simulator sim(seed, shards);
    for (int r = 1; r < 4; ++r) sim.add_region();
    bs::Network net(sim);

    LoopClient client;
    const bs::NodeId client_id =
        net.add_node(bs::NodeSpec{.name = "client"}, &client);
    std::vector<std::unique_ptr<LoopRelay>> relays;
    std::vector<bs::NodeId> ids{client_id};
    for (int r = 1; r < 4; ++r) {
      auto h = std::make_unique<LoopRelay>();
      const bs::NodeId id = net.add_node(bs::NodeSpec{.name = "relay"}, h.get());
      net.set_region(id, static_cast<std::uint32_t>(r));
      h->net = &net;
      h->self = id;
      ids.push_back(id);
      relays.push_back(std::move(h));
    }
    for (std::size_t i = 0; i < relays.size(); ++i) {
      relays[i]->next = ids[(i + 2) % ids.size()];
    }
    // Tight explicit latencies keep transit small so a chaos throttle can
    // dominate the blame profile in the fault test.
    for (std::size_t i = 0; i < ids.size(); ++i) {
      net.set_latency(ids[i], ids[(i + 1) % ids.size()], Duration::millis(1));
    }

    bc::ChaosEngine chaos(sim, net);
    if (plan != nullptr) chaos.install(*plan);

    for (int s = 0; s < sessions; ++s) {
      const Time at = Time::from_micros(10'000 + (s / burst) * spacing_us);
      const std::uint32_t ref = static_cast<std::uint32_t>(s) + 1;
      sim.post(0, at, [&net, &client, ids, ref] {
        bo::SpanScope root(bo::SpanScope::kRoot, bo::Stage::ClientInvoke, ref);
        bu::Bytes cell(kCellBytes, 0);
        put_u32(cell, 1, root.id());
        put_u32(cell, 5, ref);
        client.sent_at[ref] = bu::sim_now_micros();
        net.send(ids[0], ids[1], std::move(cell));
        root.detach();
      });
    }
    sim.run();
    cap.measured = client.measured;

    std::ostringstream os;
    bo::recorder().export_jsonl(os);
    cap.jsonl = os.str();
  }
  bo::recorder().disable();

  std::istringstream in(cap.jsonl);
  const std::vector<bt::RawEvent> events = bt::read_jsonl(in);
  cap.report = bo::compute_critical_paths(bt::crit_input_from_events(events));
  const bo::BlameProfile profile = bo::aggregate_blame(cap.report);
  cap.critpath_text = profile.to_string();
  cap.critpath_json = profile.to_json();
  return cap;
}

}  // namespace

TEST(CritPathE2E, ByteIdenticalAcrossShardCountsAndSumsToMeasuredLatency) {
  const LoopCapture one = run_loop(41, 1, 12, 3, 30'000, nullptr);
  const LoopCapture two = run_loop(41, 2, 12, 3, 30'000, nullptr);
  const LoopCapture four = run_loop(41, 4, 12, 3, 30'000, nullptr);

  ASSERT_EQ(one.report.requests.size(), 12u);
  EXPECT_EQ(one.report.incomplete, 0u);
  ASSERT_FALSE(one.critpath_text.empty());

  // The acceptance contract: the whole analysis — and the trace under it —
  // is a pure function of (seed, topology, region split), never of the
  // shard count.
  EXPECT_EQ(one.jsonl, two.jsonl);
  EXPECT_EQ(one.jsonl, four.jsonl);
  EXPECT_EQ(one.critpath_text, two.critpath_text);
  EXPECT_EQ(one.critpath_text, four.critpath_text);
  EXPECT_EQ(one.critpath_json, two.critpath_json);
  EXPECT_EQ(one.critpath_json, four.critpath_json);

  // Every request's blame sums to its root duration, and that duration is
  // the round-trip the harness measured itself (joined on kNoteRef).
  ASSERT_EQ(one.measured.size(), 12u);
  for (const bo::RequestBlame& req : one.report.requests) {
    EXPECT_EQ(sum_segs(req), req.total_us);
    ASSERT_TRUE(one.measured.count(req.ref)) << "ref " << req.ref;
    EXPECT_EQ(req.total_us, one.measured.at(req.ref)) << "ref " << req.ref;
  }

  // Sanity on the content: cross-region transit exists, and the burst
  // pattern produced at least some queue contention.
  const bo::BlameProfile profile = bo::aggregate_blame(one.report);
  std::int64_t transit = 0;
  std::int64_t queue = 0;
  for (const auto& row : profile.rows) {
    if (row.region != -1) continue;
    if (row.seg == "net_link_transit") transit = row.total_us;
    if (row.seg == "net_link_queue") queue = row.total_us;
  }
  EXPECT_GT(transit, 0);
  EXPECT_GT(queue, 0);
}

TEST(CritPathE2E, ProfileJsonRoundTripsAndDiffsCleanAgainstItself) {
  const LoopCapture cap = run_loop(41, 2, 12, 3, 30'000, nullptr);
  bo::BlameProfile parsed;
  ASSERT_TRUE(bt::parse_blame_profile(cap.critpath_json, parsed));
  EXPECT_EQ(parsed.to_json(), cap.critpath_json);

  // A profile diffed against itself must be all-quiet...
  const bo::BlameDiff self_diff =
      bo::diff_blame(parsed, parsed, /*threshold_pct=*/10, /*floor_us=*/50);
  EXPECT_FALSE(self_diff.regressed());

  // ...and load_blame_profile accepts both input shapes for a diff side.
  bo::BlameProfile from_trace;
  std::string err;
  ASSERT_TRUE(bt::load_blame_profile(cap.jsonl, from_trace, &err)) << err;
  ASSERT_TRUE(bt::load_blame_profile(cap.critpath_json, parsed, &err)) << err;
  EXPECT_EQ(from_trace.to_json(), parsed.to_json());
  EXPECT_FALSE(bt::load_blame_profile("not json at all", parsed, &err));
}

TEST(CritPathE2E, InjectedThrottleDominatesTheBlameProfile) {
  // Throttle the middle relay's access link to 0.1% of spec from the start:
  // every session's serialization there inflates from ~50 µs to ~50 ms,
  // all of it stamped as chaos dwell. The explainer must point straight at
  // it — dominant segment, majority share.
  bc::ChaosPlan plan;
  plan.seed = 7;
  bc::Throttle throttle;
  throttle.node = 2;  // middle relay (add order: client=0, r1=1, r2=2, r3=3)
  throttle.scale = 0.001;
  throttle.start = Time::from_micros(1);
  plan.throttles.push_back(throttle);

  // Sessions run one at a time, 150 ms apart — wider than the throttled
  // serialization — so the dwell itself, not queueing behind it, carries
  // the blame and the attribution is unambiguous.
  const LoopCapture cap = run_loop(43, 2, 9, 1, 150'000, &plan);
  ASSERT_GE(cap.report.requests.size(), 1u);
  for (const bo::RequestBlame& req : cap.report.requests) {
    EXPECT_EQ(sum_segs(req), req.total_us);
  }

  const bo::BlameProfile profile = bo::aggregate_blame(cap.report);
  EXPECT_EQ(profile.top_segment(), "chaos_dwell");
  std::int64_t dwell = 0;
  for (const auto& row : profile.rows) {
    if (row.region == -1 && row.seg == "chaos_dwell") dwell = row.total_us;
  }
  EXPECT_GT(dwell * 2, profile.sum_us) << "throttle must own >50% of blame";

  // Same seed without the plan: `bentotrace diff` semantics catch the
  // regression (chaos_dwell appears, means explode past 10% + 50 µs).
  const LoopCapture clean = run_loop(43, 2, 9, 1, 150'000, nullptr);
  const bo::BlameDiff diff =
      bo::diff_blame(bo::aggregate_blame(clean.report), profile, 10, 50);
  EXPECT_TRUE(diff.regressed());
}
