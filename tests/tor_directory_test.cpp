// Directory, consensus, and path selection.
#include <gtest/gtest.h>

#include <set>

#include "tor/directory.hpp"
#include "tor/pathselect.hpp"
#include "util/rng.hpp"

namespace bt = bento::tor;
namespace bc = bento::crypto;
namespace bu = bento::util;

namespace {
struct RelayFixture {
  bc::SigningKey identity;
  bc::DhKeyPair onion;
  bt::RelayDescriptor desc;
};

RelayFixture make_relay(bu::Rng& rng, const std::string& nick, bt::Addr addr,
                        double bw, bool guard, bool exit) {
  RelayFixture f{bc::SigningKey::generate(rng), bc::DhKeyPair::generate(rng), {}};
  f.desc.nickname = nick;
  f.desc.identity_key = f.identity.public_key();
  f.desc.onion_key = f.onion.public_value;
  f.desc.addr = addr;
  f.desc.node = 0;
  f.desc.bandwidth = bw;
  f.desc.flags.guard = guard;
  f.desc.flags.exit = exit;
  f.desc.flags.fast = true;
  f.desc.exit_policy =
      exit ? bt::ExitPolicy::accept_all() : bt::ExitPolicy::reject_all();
  f.desc.sign(f.identity);
  return f;
}
}  // namespace

TEST(Directory, DescriptorSignAndVerify) {
  bu::Rng rng(1);
  auto f = make_relay(rng, "r1", bt::parse_addr("10.1.0.1"), 1e6, true, false);
  EXPECT_TRUE(f.desc.verify());
  f.desc.bandwidth = 9e9;  // tamper
  EXPECT_FALSE(f.desc.verify());
}

TEST(Directory, DescriptorSerializeRoundTrip) {
  bu::Rng rng(2);
  auto f = make_relay(rng, "roundtrip", bt::parse_addr("10.2.0.1"), 5e6, false, true);
  f.desc.bento_policy = bu::to_bytes("policy-bytes");
  f.desc.sign(f.identity);
  auto back = bt::RelayDescriptor::deserialize(f.desc.serialize());
  EXPECT_EQ(back.nickname, "roundtrip");
  EXPECT_EQ(back.addr, f.desc.addr);
  EXPECT_EQ(back.bandwidth, 5e6);
  EXPECT_TRUE(back.flags.exit);
  EXPECT_FALSE(back.flags.guard);
  EXPECT_EQ(bu::to_string(back.bento_policy), "policy-bytes");
  EXPECT_TRUE(back.verify());
  EXPECT_EQ(back.fingerprint(), f.desc.fingerprint());
}

TEST(Directory, SignWithWrongKeyThrows) {
  bu::Rng rng(3);
  auto f = make_relay(rng, "r", 1, 1e6, true, false);
  auto other = bc::SigningKey::generate(rng);
  EXPECT_THROW(f.desc.sign(other), std::invalid_argument);
}

TEST(Directory, AuthorityRejectsBadDescriptor) {
  bu::Rng rng(4);
  bt::DirectoryAuthority dir(rng);
  auto f = make_relay(rng, "r", 1, 1e6, true, false);
  f.desc.nickname = "tampered";  // invalidates signature
  EXPECT_THROW(dir.upload(f.desc), std::invalid_argument);
  EXPECT_EQ(dir.relay_count(), 0u);
}

TEST(Directory, ConsensusVerifies) {
  bu::Rng rng(5);
  bt::DirectoryAuthority dir(rng);
  for (int i = 0; i < 5; ++i) {
    auto f = make_relay(rng, "r" + std::to_string(i),
                        bt::parse_addr("10." + std::to_string(i) + ".0.1"), 1e6,
                        i < 2, i >= 3);
    dir.upload(f.desc);
  }
  auto consensus = dir.make_consensus(bu::Time::from_seconds(100));
  EXPECT_EQ(consensus.relays.size(), 5u);
  EXPECT_TRUE(consensus.verify(dir.authority_key()));

  // Wrong authority key rejected.
  bu::Rng rng2(6);
  bt::DirectoryAuthority dir2(rng2);
  EXPECT_FALSE(consensus.verify(dir2.authority_key()));

  // Tampered relay entry rejected.
  consensus.relays[0].bandwidth *= 2;
  EXPECT_FALSE(consensus.verify(dir.authority_key()));
}

TEST(Directory, ReuploadReplacesDescriptor) {
  bu::Rng rng(7);
  bt::DirectoryAuthority dir(rng);
  auto f = make_relay(rng, "r", 1, 1e6, true, false);
  dir.upload(f.desc);
  f.desc.bandwidth = 2e6;
  f.desc.sign(f.identity);
  dir.upload(f.desc);
  EXPECT_EQ(dir.relay_count(), 1u);
  auto c = dir.make_consensus(bu::Time::from_seconds(0));
  EXPECT_EQ(c.relays[0].bandwidth, 2e6);
}

TEST(Directory, HsDescriptorPublishFetch) {
  bu::Rng rng(8);
  bt::DirectoryAuthority dir(rng);
  auto service = bc::SigningKey::generate(rng);
  auto ntor = bc::DhKeyPair::generate(rng);
  bt::HsDescriptor d;
  d.onion_id = bc::key_fingerprint(service.public_key());
  d.service_pub = service.public_key();
  d.service_ntor_pub = ntor.public_value;
  d.intro_points = {"fp-a", "fp-b"};
  d.sign(service);

  dir.publish_hs(d);
  auto got = dir.fetch_hs(d.onion_id);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->intro_points, d.intro_points);
  EXPECT_TRUE(got->verify());
  EXPECT_FALSE(dir.fetch_hs("nonexistent").has_value());
}

TEST(Directory, HsDescriptorWrongOnionIdRejected) {
  bu::Rng rng(9);
  bt::DirectoryAuthority dir(rng);
  auto service = bc::SigningKey::generate(rng);
  bt::HsDescriptor d;
  d.onion_id = "not-the-fingerprint";
  d.service_pub = service.public_key();
  d.service_ntor_pub = 3;
  d.sign(service);
  EXPECT_FALSE(d.verify());
  EXPECT_THROW(dir.publish_hs(d), std::invalid_argument);
}

namespace {
bt::Consensus build_test_consensus(bu::Rng& rng, bt::DirectoryAuthority& dir,
                                   int guards, int middles, int exits) {
  int block = 1;
  auto add = [&](const std::string& prefix, int n, bool g, bool e, double bw) {
    for (int i = 0; i < n; ++i) {
      auto f = make_relay(rng, prefix + std::to_string(i),
                          bt::parse_addr("10." + std::to_string(block++) + ".0.1"),
                          bw, g, e);
      dir.upload(f.desc);
    }
  };
  add("guard", guards, true, false, 2e6);
  add("middle", middles, false, false, 1e6);
  add("exit", exits, false, true, 3e6);
  return dir.make_consensus(bu::Time::from_seconds(0));
}
}  // namespace

TEST(PathSelect, ThreeHopRolesRespecred) {
  bu::Rng rng(10);
  bt::DirectoryAuthority dir(rng);
  auto consensus = build_test_consensus(rng, dir, 3, 4, 3);
  bt::PathSelector sel(consensus);

  for (int i = 0; i < 50; ++i) {
    bt::PathConstraints c;
    c.exit_to = bt::Endpoint{bt::parse_addr("93.1.1.1"), 443};
    auto path = sel.choose(c, rng);
    ASSERT_EQ(path.size(), 3u);
    EXPECT_TRUE(path[0].flags.guard);
    EXPECT_TRUE(path[2].flags.exit);
    EXPECT_TRUE(path[2].exit_policy.allows(*c.exit_to));
    // Distinct relays and /16s.
    std::set<std::string> fps = {path[0].fingerprint(), path[1].fingerprint(),
                                 path[2].fingerprint()};
    EXPECT_EQ(fps.size(), 3u);
    std::set<std::uint32_t> nets = {bt::slash16(path[0].addr),
                                    bt::slash16(path[1].addr),
                                    bt::slash16(path[2].addr)};
    EXPECT_EQ(nets.size(), 3u);
  }
}

TEST(PathSelect, BandwidthWeighting) {
  bu::Rng rng(11);
  bt::DirectoryAuthority dir(rng);
  // Two exits with 9:1 bandwidth ratio.
  auto heavy = make_relay(rng, "heavy", bt::parse_addr("10.100.0.1"), 9e6, false, true);
  auto light = make_relay(rng, "light", bt::parse_addr("10.101.0.1"), 1e6, false, true);
  dir.upload(heavy.desc);
  dir.upload(light.desc);
  build_test_consensus(rng, dir, 3, 3, 0);
  auto consensus = dir.make_consensus(bu::Time::from_seconds(0));
  bt::PathSelector sel(consensus);

  int heavy_count = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    bt::PathConstraints c;
    c.exit_to = bt::Endpoint{1, 80};
    auto path = sel.choose(c, rng);
    if (path[2].nickname == "heavy") ++heavy_count;
  }
  EXPECT_NEAR(static_cast<double>(heavy_count) / trials, 0.9, 0.04);
}

TEST(PathSelect, PinnedLastHop) {
  bu::Rng rng(12);
  bt::DirectoryAuthority dir(rng);
  auto consensus = build_test_consensus(rng, dir, 3, 4, 3);
  bt::PathSelector sel(consensus);
  const std::string target = consensus.relays[4].fingerprint();
  bt::PathConstraints c;
  c.last_hop = target;
  auto path = sel.choose(c, rng);
  EXPECT_EQ(path.back().fingerprint(), target);
  EXPECT_NE(path[0].fingerprint(), target);
  EXPECT_NE(path[1].fingerprint(), target);
}

TEST(PathSelect, ExclusionsHonored) {
  bu::Rng rng(13);
  bt::DirectoryAuthority dir(rng);
  auto consensus = build_test_consensus(rng, dir, 3, 4, 3);
  bt::PathSelector sel(consensus);
  std::vector<std::string> excluded;
  for (const auto& r : consensus.relays) {
    if (r.nickname.starts_with("exit") && r.nickname != "exit0") {
      excluded.push_back(r.fingerprint());
    }
  }
  for (int i = 0; i < 20; ++i) {
    bt::PathConstraints c;
    c.exit_to = bt::Endpoint{1, 80};
    c.excluded = excluded;
    auto path = sel.choose(c, rng);
    EXPECT_EQ(path[2].nickname, "exit0");
  }
}

TEST(PathSelect, UnsatisfiableThrows) {
  bu::Rng rng(14);
  bt::DirectoryAuthority dir(rng);
  auto consensus = build_test_consensus(rng, dir, 1, 1, 1);
  bt::PathSelector sel(consensus);
  bt::PathConstraints c;
  c.exit_to = bt::Endpoint{1, 80};
  std::vector<std::string> all;
  for (const auto& r : consensus.relays) all.push_back(r.fingerprint());
  c.excluded = all;
  EXPECT_THROW(sel.choose(c, rng), std::runtime_error);

  bt::PathConstraints pinned;
  pinned.last_hop = "does-not-exist";
  EXPECT_THROW(sel.choose(pinned, rng), std::runtime_error);
}

TEST(PathSelect, InternalCircuitNeedsNoExitFlag) {
  bu::Rng rng(15);
  bt::DirectoryAuthority dir(rng);
  auto consensus = build_test_consensus(rng, dir, 3, 4, 0);  // no exits at all
  bt::PathSelector sel(consensus);
  bt::PathConstraints c;  // internal
  auto path = sel.choose(c, rng);
  EXPECT_EQ(path.size(), 3u);
}
