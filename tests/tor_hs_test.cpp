// Hidden services end-to-end: introduction, rendezvous, e2e streams.
#include <gtest/gtest.h>

#include "tor/hs.hpp"
#include "tor/testbed.hpp"
#include "util/bytes.hpp"

namespace bt = bento::tor;
namespace bu = bento::util;

namespace {
struct HsFixture {
  bt::Testbed bed;
  std::unique_ptr<bt::OnionProxy> host_proxy;
  std::unique_ptr<bt::HiddenServiceHost> host;
  std::unique_ptr<bt::OnionProxy> client_proxy;

  explicit HsFixture(std::uint64_t seed = 7) : bed(make_options(seed)) {
    bed.finalize();
    host_proxy = bed.make_client("hs-host", 2e6);
    host = std::make_unique<bt::HiddenServiceHost>(*host_proxy, bed.directory(), 2);
    client_proxy = bed.make_client("hs-client");
  }

  static bt::TestbedOptions make_options(std::uint64_t seed) {
    bt::TestbedOptions o;
    o.seed = seed;
    o.guards = 3;
    o.middles = 5;
    o.exits = 2;
    return o;
  }

  bool start_service() {
    bool ok = false, done = false;
    host->start([&](bool success) {
      ok = success;
      done = true;
    });
    bed.run();
    return done && ok;
  }
};
}  // namespace

TEST(HiddenService, IntroBlobRoundTrip) {
  bu::Rng rng(1);
  auto service_key = bento::crypto::DhKeyPair::generate(rng);
  bu::Bytes cookie = rng.bytes(20);
  bu::Bytes skin = rng.bytes(16);
  auto blob = bt::make_intro_blob(service_key.public_value, "rend-fp", cookie, skin, rng);

  std::string fp;
  bu::Bytes got_cookie, got_skin;
  ASSERT_TRUE(bt::open_intro_blob(service_key, blob, &fp, &got_cookie, &got_skin));
  EXPECT_EQ(fp, "rend-fp");
  EXPECT_EQ(got_cookie, cookie);
  EXPECT_EQ(got_skin, skin);
}

TEST(HiddenService, IntroBlobWrongKeyFails) {
  bu::Rng rng(2);
  auto right = bento::crypto::DhKeyPair::generate(rng);
  auto wrong = bento::crypto::DhKeyPair::generate(rng);
  auto blob = bt::make_intro_blob(right.public_value, "fp", rng.bytes(20),
                                  rng.bytes(16), rng);
  std::string fp;
  bu::Bytes c, s;
  EXPECT_FALSE(bt::open_intro_blob(wrong, blob, &fp, &c, &s));
  EXPECT_FALSE(bt::open_intro_blob(right, bu::Bytes(10), &fp, &c, &s));
}

TEST(HiddenService, PublishesDescriptorOnStart) {
  HsFixture fx;
  ASSERT_TRUE(fx.start_service());
  auto desc = fx.bed.directory().fetch_hs(fx.host->onion_id());
  ASSERT_TRUE(desc.has_value());
  EXPECT_EQ(desc->intro_points.size(), 2u);
  EXPECT_TRUE(desc->verify());
}

TEST(HiddenService, ClientConnectsAndExchangesData) {
  HsFixture fx;
  ASSERT_TRUE(fx.start_service());

  // Service: uppercase echo.
  fx.host->set_stream_acceptor([](bt::Stream& stream) {
    stream.set_on_data([&stream](bu::ByteView data) {
      bu::Bytes out(data.begin(), data.end());
      for (auto& b : out) b = static_cast<std::uint8_t>(std::toupper(b));
      stream.send(out);
    });
    return true;
  });

  bt::HsClient hs_client(*fx.client_proxy, fx.bed.directory());
  bu::Bytes received;
  bool connected = false;
  hs_client.connect(fx.host->onion_id(), [&](bt::CircuitOrigin* circ) {
    ASSERT_NE(circ, nullptr);
    EXPECT_EQ(circ->hop_count(), 4);  // 3 real + e2e virtual hop
    bt::Stream::Callbacks cbs;
    cbs.on_data = [&](bu::ByteView d) { bu::append(received, d); };
    bt::Stream* stream = circ->open_stream({0, 80}, std::move(cbs));
    stream->set_on_connected([&connected, stream] {
      connected = true;
      stream->send(bu::to_bytes("hello hidden world"));
    });
  });
  fx.bed.run();
  EXPECT_TRUE(connected);
  EXPECT_EQ(bu::to_string(received), "HELLO HIDDEN WORLD");
  EXPECT_EQ(fx.host->active_rendezvous(), 1u);
}

TEST(HiddenService, LargeTransferFromService) {
  HsFixture fx(21);
  ASSERT_TRUE(fx.start_service());

  bu::Rng rng(3);
  const auto payload = std::make_shared<bu::Bytes>(rng.bytes(400'000));
  fx.host->set_stream_acceptor([payload](bt::Stream& stream) {
    stream.set_on_data([&stream, payload](bu::ByteView) {
      stream.send(*payload);
      stream.end();
    });
    return true;
  });

  bt::HsClient hs_client(*fx.client_proxy, fx.bed.directory());
  bu::Bytes received;
  bool ended = false;
  hs_client.connect(fx.host->onion_id(), [&](bt::CircuitOrigin* circ) {
    ASSERT_NE(circ, nullptr);
    bt::Stream::Callbacks cbs;
    cbs.on_data = [&](bu::ByteView d) { bu::append(received, d); };
    cbs.on_end = [&] { ended = true; };
    bt::Stream* stream = circ->open_stream({0, 80}, std::move(cbs));
    stream->set_on_connected([stream] { stream->send(bu::to_bytes("GET\n")); });
  });
  fx.bed.run();
  EXPECT_TRUE(ended);
  EXPECT_EQ(received, *payload);  // 800+ cells through the spliced circuits
}

TEST(HiddenService, UnknownOnionIdFails) {
  HsFixture fx;
  bt::HsClient hs_client(*fx.client_proxy, fx.bed.directory());
  bool called = false;
  hs_client.connect("0123456789abcdef", [&](bt::CircuitOrigin* circ) {
    called = true;
    EXPECT_EQ(circ, nullptr);
  });
  fx.bed.run();
  EXPECT_TRUE(called);
}

TEST(HiddenService, MultipleClientsSameService) {
  HsFixture fx(33);
  ASSERT_TRUE(fx.start_service());
  fx.host->set_stream_acceptor([](bt::Stream& stream) {
    stream.set_on_data([&stream](bu::ByteView d) { stream.send(d); });
    return true;
  });

  bt::HsClient c1(*fx.client_proxy, fx.bed.directory());
  auto proxy2 = fx.bed.make_client("client2");
  bt::HsClient c2(*proxy2, fx.bed.directory());

  int echoes = 0;
  auto connect_and_echo = [&](bt::HsClient& hc, const std::string& msg) {
    hc.connect(fx.host->onion_id(), [&echoes, msg](bt::CircuitOrigin* circ) {
      ASSERT_NE(circ, nullptr);
      bt::Stream::Callbacks cbs;
      auto got = std::make_shared<bu::Bytes>();
      cbs.on_data = [got, msg, &echoes](bu::ByteView d) {
        bu::append(*got, d);
        if (got->size() == msg.size()) {
          EXPECT_EQ(bu::to_string(*got), msg);
          ++echoes;
        }
      };
      bt::Stream* stream = circ->open_stream({0, 80}, std::move(cbs));
      stream->set_on_connected([stream, msg] { stream->send(bu::to_bytes(msg)); });
    });
  };
  connect_and_echo(c1, "first client");
  connect_and_echo(c2, "second client");
  fx.bed.run();
  EXPECT_EQ(echoes, 2);
  EXPECT_EQ(fx.host->active_rendezvous(), 2u);
}

TEST(HiddenService, ReplicaWithClonedIdentityServes) {
  // Paper §8: LoadBalancer copies hostname+private key to replicas; a
  // replica must be able to answer an introduction for the same onion id.
  HsFixture fx(44);
  ASSERT_TRUE(fx.start_service());

  auto replica_proxy = fx.bed.make_client("replica", 2e6);
  bt::HiddenServiceHost replica(*replica_proxy, fx.bed.directory(),
                                fx.host->identity(), 2);
  replica.set_stream_acceptor([](bt::Stream& stream) {
    stream.set_on_data([&stream](bu::ByteView) {
      stream.send(bu::to_bytes("replica says hi"));
      stream.end();
    });
    return true;
  });
  EXPECT_EQ(replica.onion_id(), fx.host->onion_id());

  // Front end redirects every introduction to the replica.
  fx.host->set_intro_interceptor([&replica](bu::ByteView blob) {
    replica.handle_introduction(blob);
    return false;  // handled
  });

  bt::HsClient hs_client(*fx.client_proxy, fx.bed.directory());
  bu::Bytes received;
  hs_client.connect(fx.host->onion_id(), [&](bt::CircuitOrigin* circ) {
    ASSERT_NE(circ, nullptr);
    bt::Stream::Callbacks cbs;
    cbs.on_data = [&](bu::ByteView d) { bu::append(received, d); };
    bt::Stream* stream = circ->open_stream({0, 80}, std::move(cbs));
    stream->set_on_connected([stream] { stream->send(bu::to_bytes("GET\n")); });
  });
  fx.bed.run();
  EXPECT_EQ(bu::to_string(received), "replica says hi");
  EXPECT_EQ(replica.active_rendezvous(), 1u);
  EXPECT_EQ(fx.host->active_rendezvous(), 0u);
}
