// Golden fixture for BL101 scoping outside src/: analyzed under a virtual
// tools/ path, where wall-clock reads are legitimate (bench timing loops)
// and only BENTO_DETERMINISTIC functions opt into the contract.
#include <ctime>

#include "util/annotations.hpp"

namespace fx {

// Clean: unannotated tools/ code may read the wall clock.
long bench_now() { return time(nullptr); }

// Positive: the annotation puts this function under the replay contract.
BENTO_DETERMINISTIC long replay_now() {
  return time(nullptr);  // expect(BL101)
}

}  // namespace fx
