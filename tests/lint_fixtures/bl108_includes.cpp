// Golden fixture for BL108 (include hygiene): no "../" escapes from the
// source root, no libstdc++ internals. Never compiled — analysis only.
#include "../util/log.hpp"  // expect(BL108)
#include <bits/stdc++.h>    // expect(BL108)
// bentolint: allow(BL108 vendored tree keeps its upstream relative layout)
#include "../vendor/blob.hpp"
#include "util/log.hpp"

namespace fx {
int ten() { return 10; }
}  // namespace fx
