// Golden fixture for BL106 (banned unbounded C string functions).
#include <cstdio>
#include <cstring>

namespace fx {

// Positive: unbounded writes.
void copy_bad(char* dst, const char* src) {
  strcpy(dst, src);         // expect(BL106)
  sprintf(dst, "%s", src);  // expect(BL106)
}

// Suppressed: caller-sized buffer with a documented contract.
void copy_allowed(char* dst, const char* src) {
  // bentolint: allow(BL106 dst sized by caller contract, fuzz-covered)
  strcat(dst, src);
}

// Clean: the bounded variants.
void copy_clean(char* dst, const char* src) {
  snprintf(dst, 16, "%s", src);
}

}  // namespace fx
