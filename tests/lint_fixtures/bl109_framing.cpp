// Golden fixture for BL109 (store framing invariant, src/store/ only):
// write_frame is the single durable-commit primitive, and every caller must
// be annotated BENTO_FRAMED and compute a crc32 in the same function body —
// the every-frame-carries-a-CRC contract torn-write recovery depends on.
#include <cstdint>
#include <vector>

#include "util/annotations.hpp"

namespace fx {

using Bytes = std::vector<std::uint8_t>;

// The primitive itself (a definition, not a call) never fires.
void write_frame(Bytes& log, const Bytes& frame) {
  log.insert(log.end(), frame.begin(), frame.end());
}

std::uint32_t crc32c_of(const Bytes& frame) { return frame.empty() ? 0u : 1u; }

// Positive: a commit from an unannotated function.
void sneaky_commit(Bytes& log, const Bytes& frame) {
  write_frame(log, frame);  // expect(BL109)
}

// Positive: annotated, but the frame goes out without a CRC refresh.
BENTO_FRAMED void unchecked_commit(Bytes& log, Bytes& frame) {
  frame.push_back(0);
  write_frame(log, frame);  // expect(BL109)
}

// Suppressed: a replay-side re-commit of already-checksummed bytes.
BENTO_FRAMED void verbatim_recommit(Bytes& log, const Bytes& frame) {
  // bentolint: allow(BL109 frame copied verbatim, CRC already embedded)
  write_frame(log, frame);
}

// Clean: the canonical shape — framed, and the CRC is refreshed in-body.
BENTO_FRAMED void commit_record(Bytes& log, Bytes& frame) {
  const std::uint32_t crc = crc32c_of(frame);
  frame[0] = static_cast<std::uint8_t>(crc);
  write_frame(log, frame);
}

// Clean: crc32 use without a frame write carries no obligation.
std::uint32_t checksum_only(const Bytes& frame) { return crc32c_of(frame); }

}  // namespace fx
