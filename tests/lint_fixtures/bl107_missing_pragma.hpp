// expect(BL107) — this header deliberately omits #pragma once.
namespace fx {
inline int seven() { return 7; }
}  // namespace fx
