// bentolint: allow-file(BL107 textual fragment, included mid-file by codegen)
namespace fx {
inline int eight() { return 8; }
}  // namespace fx
