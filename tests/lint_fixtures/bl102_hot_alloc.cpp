// Golden fixture for BL102 (heap allocation inside a BENTO_HOT function —
// the 0-allocs/cell datapath guarantee, enforced at the source).
#include <memory>
#include <vector>

#include "util/annotations.hpp"

namespace fx {

// Positive: every allocation class the rule knows about.
BENTO_HOT void hot_path(std::vector<int>& q) {
  int* p = new int[4];                 // expect(BL102)
  auto s = std::make_shared<int>(7);   // expect(BL102)
  q.push_back(*p + *s);                // expect(BL102)
  std::vector<int> scratch(8);         // expect(BL102)
  scratch.front() = 1;
  delete[] p;
}

// Suppressed: the cold refill branch, explained at the site.
BENTO_HOT void hot_refill(std::vector<int>& q) {
  // bentolint: allow(BL102 cold refill branch, amortized at steady state)
  q.reserve(64);
}

// Clean: an unannotated function may allocate, and placement new is the
// pool fast path, not a heap allocation.
void cold_path(std::vector<int>& q) { q.push_back(1); }
BENTO_HOT void hot_placement(void* slot) { new (slot) int(0); }

}  // namespace fx
