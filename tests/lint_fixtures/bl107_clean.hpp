#pragma once
namespace fx {
inline int nine() { return 9; }
}  // namespace fx
