// Golden fixture for BL102 on the shard-profiler window-close path
// (DESIGN.md §13). The always-cheap contract is that on_window_close and
// its sibling hooks run at every barrier with zero heap traffic — fixed
// arrays, saturating adds. This fixture injects the regressions the rule
// must catch if someone "improves" the profiler with dynamic storage.
#include <cstdint>
#include <map>
#include <vector>

#include "util/annotations.hpp"

namespace fx {

struct Profiler {
  std::uint64_t windows = 0;
  std::uint64_t region_events[256] = {};
  std::vector<std::uint64_t> spans;
  std::map<std::uint32_t, std::uint64_t> by_region;

  // Positive: per-window dynamic storage is exactly the regression BL102
  // exists to stop on this path.
  BENTO_HOT void on_window_close(const std::uint64_t* events,
                                 std::uint32_t count, std::int64_t span_us) {
    ++windows;
    spans.push_back(static_cast<std::uint64_t>(span_us));   // expect(BL102)
    std::vector<std::uint64_t> merged(count);               // expect(BL102)
    for (std::uint32_t i = 0; i < count; ++i) {
      merged[i] = events[i];
      by_region.insert({i, events[i]});                     // expect(BL102)
    }
  }

  // Clean: the real hook's shape — fixed-size tallies only.
  BENTO_HOT void on_window_close_fixed(const std::uint64_t* events,
                                       std::uint32_t count) {
    ++windows;
    for (std::uint32_t i = 0; i < count && i < 256; ++i) {
      region_events[i] += events[i];
    }
  }
};

}  // namespace fx
