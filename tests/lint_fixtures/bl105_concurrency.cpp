// Golden fixture for BL105 (concurrency allowlist): raw thread/mutex/atomic
// in the sim/core tree flags unless the declaration carries a
// `// bentolint: allow(BL105 <why>)` sanction (DESIGN.md §12). bentolint_test
// analyzes this file twice — under a virtual src/sim/ path (fires) and a
// virtual src/tor/ path (out of scope, silent) — to pin the scoping rule.
#include <atomic>
#include <mutex>
#include <thread>

namespace fx {

// Positive: members and locals alike.
struct Shared {
  std::mutex mu;             // expect(BL105)
  std::atomic<int> refs{0};  // expect(BL105)
};

void spin() {
  std::thread t([] {});  // expect(BL105)
  t.join();
}

// Suppressed: harness-only synchronization, explained at the site.
struct Gate {
  // bentolint: allow(BL105 crash-only test harness, never on the sim loop)
  std::mutex harness_mu;
};

}  // namespace fx
