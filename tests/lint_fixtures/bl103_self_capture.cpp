// Golden fixture for BL103 (shared_from_this captured by a lambda — the
// BentoConnection reference-cycle leak class).
#include <functional>
#include <memory>

namespace fx {

struct Conn : std::enable_shared_from_this<Conn> {
  std::function<void()> cb;

  // Positive: shared_from_this() directly in the capture list.
  void arm_direct() {
    cb = [self = shared_from_this()] { (void)self; };  // expect(BL103)
  }

  // Positive: a strong self variable derived from shared_from_this().
  void arm_var() {
    auto self = shared_from_this();
    cb = [self] { (void)self; };  // expect(BL103)
  }

  // Suppressed: a one-shot handler that provably clears itself.
  void arm_allowed() {
    auto keep = shared_from_this();
    // bentolint: allow(BL103 one-shot timer, handler cleared on fire)
    cb = [keep] { (void)keep; };
  }

  // Clean: the weak-capture pattern the diagnostic points to.
  void arm_weak() {
    std::weak_ptr<Conn> weak = shared_from_this();
    cb = [weak] {
      if (auto self = weak.lock()) (void)self;
    };
  }
};

}  // namespace fx
