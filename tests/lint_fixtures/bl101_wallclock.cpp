// Golden fixture for BL101 (wall clock / entropy in deterministic code).
// Analyzed under a virtual src/ path, where the whole file is covered by
// the DESIGN.md §9 determinism contract — no annotation needed. Never
// compiled — analysis only.
#include <chrono>
#include <ctime>
#include <random>

namespace fx {

struct Msg {
  long time_us() const { return 0; }
};

// Positive: wall-clock types and free entropy/time calls.
long bad_now() {
  auto t = std::chrono::steady_clock::now();  // expect(BL101)
  std::random_device rd;                      // expect(BL101)
  return time(nullptr) +                      // expect(BL101)
         static_cast<long>(t.time_since_epoch().count() + rd());
}

// Suppressed: same read, explained.
long allowed_now() {
  // bentolint: allow(BL101 cold-path startup banner, never replayed)
  return time(nullptr);
}

// Clean: member calls and non-std qualified helpers share names with the
// banned free functions but are not them.
long clean(const Msg& m) { return m.time_us() + util::clock(0); }

}  // namespace fx
