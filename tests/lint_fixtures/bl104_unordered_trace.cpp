// Golden fixture for BL104 (unordered-container iteration feeding trace /
// log / event emission — iteration-order nondeterminism in the recorders).
#include <map>
#include <string>
#include <unordered_map>

namespace fx {

void trace(int);
void note(const std::string&);

std::unordered_map<int, std::string> g_table;
std::map<int, std::string> g_sorted;

// Positive: hash-order iteration lands in the trace.
void dump_unordered() {
  for (const auto& [k, v] : g_table) {  // expect(BL104)
    trace(k);
  }
}

// Suppressed: the reader sorts before diffing, explained at the site.
void dump_allowed() {
  // bentolint: allow(BL104 reader re-sorts keys before byte-diffing)
  for (const auto& [k, v] : g_table) {
    note(v);
  }
}

// Clean: ordered iteration may emit, and unordered iteration that only
// aggregates (order-independent) is fine.
int dump_clean() {
  int acc = 0;
  for (const auto& [k, v] : g_sorted) trace(k);
  for (const auto& [k, v] : g_table) acc += k;
  return acc;
}

}  // namespace fx
