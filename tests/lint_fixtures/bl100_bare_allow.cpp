// Golden fixture for BL100: a suppression must name a rule AND a reason.
// Lines that should produce a diagnostic carry an expect-marker comment;
// bentolint_test asserts the diagnostic set matches the markers exactly.
namespace fx {

// Positive: rule named but no reason given.
// bentolint: allow(BL102) -- expect(BL100)
int bare() { return 1; }

// Positive: a reason but no BLxxx rule.
// bentolint: allow(cold path, reviewed) -- expect(BL100)
int ruleless() { return 2; }

// Clean: rule plus reason parses; suppressing a rule that never fires is
// inert, not an error.
// bentolint: allow(BL102 pool refill, amortized across 64 events)
int fine() { return 3; }

}  // namespace fx
