// End-to-end tests over the full simulated Tor network: circuit building,
// exit streams to clearnet servers, local (Bento-style) apps on relays,
// flow control, cover traffic, and teardown.
#include <gtest/gtest.h>

#include "tor/testbed.hpp"
#include "util/bytes.hpp"

namespace bt = bento::tor;
namespace bu = bento::util;
namespace bs = bento::sim;

namespace {
bt::Endpoint web_endpoint() { return {bt::parse_addr("93.184.216.34"), 80}; }

// Fetches `path` through a fresh circuit; returns body via out-param.
struct FetchResult {
  bool connected = false;
  bu::Bytes body;
  bool ended = false;
  double seconds = -1;
};

FetchResult fetch_over_tor(bt::Testbed& bed, bt::OnionProxy& client,
                           const std::string& path) {
  FetchResult result;
  bt::PathConstraints constraints;
  constraints.exit_to = web_endpoint();
  client.build_circuit(constraints, [&](bt::CircuitOrigin* circ) {
    ASSERT_NE(circ, nullptr);
    bt::Stream::Callbacks cbs;
    cbs.on_data = [&result](bu::ByteView d) { bu::append(result.body, d); };
    cbs.on_end = [&result, &bed] {
      result.ended = true;
      result.seconds = bed.sim().now().seconds();
    };
    bt::Stream* stream = circ->open_stream(web_endpoint(), std::move(cbs));
    stream->set_on_connected([&result, stream, path] {
      result.connected = true;
      stream->send(bu::to_bytes("GET " + path + "\n"));
    });
  });
  bed.run();
  return result;
}
}  // namespace

TEST(TorE2E, CircuitBuildsThreeHops) {
  bt::Testbed bed;
  bed.finalize();
  auto client = bed.make_client("alice");
  bt::CircuitOrigin* built = nullptr;
  bt::PathConstraints constraints;
  client->build_circuit(constraints, [&](bt::CircuitOrigin* c) { built = c; });
  bed.run();
  ASSERT_NE(built, nullptr);
  EXPECT_TRUE(built->built());
  EXPECT_EQ(built->hop_count(), 3);
  EXPECT_EQ(client->open_circuits(), 1u);
}

TEST(TorE2E, CircuitBuildTakesRoundTrips) {
  bt::TestbedOptions opt;
  opt.min_latency = bu::Duration::millis(30);
  opt.max_latency = bu::Duration::millis(30);
  bt::Testbed bed(opt);
  bed.finalize();
  auto client = bed.make_client("alice");
  double built_at = -1;
  client->build_circuit({}, [&](bt::CircuitOrigin* c) {
    ASSERT_NE(c, nullptr);
    built_at = bed.sim().now().seconds();
  });
  bed.run();
  // 3 handshake round trips over 1,2,3 hops = (2+4+6)*30ms = 360ms plus
  // serialization; must be at least that and not wildly more.
  EXPECT_GE(built_at, 0.36);
  EXPECT_LT(built_at, 0.60);
}

TEST(TorE2E, FetchSmallPageThroughExit) {
  bt::Testbed bed;
  bed.finalize();
  bed.add_web_server(web_endpoint().addr, [](const std::string& path) {
    return bu::to_bytes("response for " + path);
  });
  auto client = bed.make_client("alice");
  auto result = fetch_over_tor(bed, *client, "/index.html");
  EXPECT_TRUE(result.connected);
  EXPECT_TRUE(result.ended);
  EXPECT_EQ(bu::to_string(result.body), "response for /index.html");
}

TEST(TorE2E, FetchLargeBodyCrossesManyCells) {
  bt::Testbed bed;
  bed.finalize();
  bu::Rng content_rng(99);
  const bu::Bytes big = content_rng.bytes(300'000);
  bed.add_web_server(web_endpoint().addr,
                     [&big](const std::string&) { return big; });
  auto client = bed.make_client("alice");
  auto result = fetch_over_tor(bed, *client, "/big");
  EXPECT_TRUE(result.ended);
  EXPECT_EQ(result.body, big);  // exact byte-for-byte through 3 onion layers
}

TEST(TorE2E, MissingPageReturns404) {
  bt::Testbed bed;
  bed.finalize();
  bed.add_web_server(web_endpoint().addr, [](const std::string& path)
                         -> std::optional<bu::Bytes> {
    if (path == "/exists") return bu::to_bytes("ok");
    return std::nullopt;
  });
  auto client = bed.make_client("alice");
  auto result = fetch_over_tor(bed, *client, "/missing");
  EXPECT_TRUE(result.ended);
  EXPECT_EQ(bu::to_string(result.body), "404 not found\n");
}

TEST(TorE2E, ExitPolicyRefusesStream) {
  bt::TestbedOptions opt;
  opt.exit_policy = "accept *:443\nreject *:*";  // port 80 refused
  bt::Testbed bed(opt);
  bed.finalize();
  bed.add_web_server(web_endpoint().addr,
                     [](const std::string&) { return bu::to_bytes("x"); });
  auto client = bed.make_client("alice");

  bool connected = false, ended = false;
  bt::PathConstraints constraints;  // internal circuit: last hop may be any relay
  client->build_circuit(constraints, [&](bt::CircuitOrigin* circ) {
    ASSERT_NE(circ, nullptr);
    bt::Stream::Callbacks cbs;
    cbs.on_connected = [&] { connected = true; };
    cbs.on_end = [&] { ended = true; };
    circ->open_stream(web_endpoint(), std::move(cbs));
  });
  bed.run();
  EXPECT_FALSE(connected);
  EXPECT_TRUE(ended);
}

TEST(TorE2E, UnknownDestinationEndsStream) {
  bt::Testbed bed;
  bed.finalize();
  auto client = bed.make_client("alice");
  bool ended = false;
  bt::PathConstraints c;
  c.exit_to = web_endpoint();
  client->build_circuit(c, [&](bt::CircuitOrigin* circ) {
    ASSERT_NE(circ, nullptr);
    bt::Stream::Callbacks cbs;
    cbs.on_end = [&] { ended = true; };
    circ->open_stream(web_endpoint(), std::move(cbs));  // no server registered
  });
  bed.run();
  EXPECT_TRUE(ended);
}

namespace {
/// Local echo app bound to a relay port: echoes every chunk back n times.
class EchoApp : public bt::LocalApp {
 public:
  explicit EchoApp(int repeat = 1) : repeat_(repeat) {}
  bool on_stream_open(bt::EdgeStream& stream) override {
    ++opened_;
    stream.set_on_data([&stream, this](bu::ByteView data) {
      for (int i = 0; i < repeat_; ++i) stream.send(data);
    });
    stream.set_on_end([this] { ++closed_; });
    return accept_;
  }
  int opened_ = 0;
  int closed_ = 0;
  bool accept_ = true;
  int repeat_;
};
}  // namespace

TEST(TorE2E, LocalAppStreamEcho) {
  bt::Testbed bed;
  bed.finalize();
  EchoApp app;
  bt::Router& box = bed.router(bed.router_count() - 1);
  box.bind_local_app(8888, &app);

  auto client = bed.make_client("alice");
  bu::Bytes received;
  bool connected = false;
  bt::PathConstraints c;
  c.last_hop = box.fingerprint();
  client->build_circuit(c, [&](bt::CircuitOrigin* circ) {
    ASSERT_NE(circ, nullptr);
    bt::Stream::Callbacks cbs;
    cbs.on_data = [&](bu::ByteView d) { bu::append(received, d); };
    bt::Stream* stream = circ->open_stream({box.addr(), 8888}, std::move(cbs));
    stream->set_on_connected([&connected, stream] {
      connected = true;
      stream->send(bu::to_bytes("ping"));
    });
  });
  bed.run();
  EXPECT_TRUE(connected);
  EXPECT_EQ(app.opened_, 1);
  EXPECT_EQ(bu::to_string(received), "ping");
}

TEST(TorE2E, LocalAppCanRefuseStream) {
  bt::Testbed bed;
  bed.finalize();
  EchoApp app;
  app.accept_ = false;
  bt::Router& box = bed.router(0);
  box.bind_local_app(8888, &app);

  auto client = bed.make_client("alice");
  bool connected = false, ended = false;
  bt::PathConstraints c;
  c.last_hop = box.fingerprint();
  client->build_circuit(c, [&](bt::CircuitOrigin* circ) {
    bt::Stream::Callbacks cbs;
    cbs.on_connected = [&] { connected = true; };
    cbs.on_end = [&] { ended = true; };
    circ->open_stream({box.addr(), 8888}, std::move(cbs));
  });
  bed.run();
  EXPECT_FALSE(connected);
  EXPECT_TRUE(ended);
}

TEST(TorE2E, UnboundPortEndsStream) {
  bt::Testbed bed;
  bed.finalize();
  bt::Router& box = bed.router(0);
  auto client = bed.make_client("alice");
  bool ended = false;
  bt::PathConstraints c;
  c.last_hop = box.fingerprint();
  client->build_circuit(c, [&](bt::CircuitOrigin* circ) {
    bt::Stream::Callbacks cbs;
    cbs.on_end = [&] { ended = true; };
    circ->open_stream({box.addr(), 7777}, std::move(cbs));
  });
  bed.run();
  EXPECT_TRUE(ended);
}

TEST(TorE2E, LargeUploadToLocalApp) {
  // Client -> relay direction exercises the origin-side package windows and
  // the SENDMEs the edge returns (forward flow control).
  bt::Testbed bed;
  bed.finalize();

  struct SinkApp : bt::LocalApp {
    bu::Bytes received;
    bool ended = false;
    bool on_stream_open(bt::EdgeStream& stream) override {
      stream.set_on_data([this](bu::ByteView d) { bu::append(received, d); });
      stream.set_on_end([this] { ended = true; });
      return true;
    }
  } app;
  bt::Router& box = bed.router(1);
  box.bind_local_app(9000, &app);

  auto client = bed.make_client("alice");
  bu::Rng rng(5);
  const bu::Bytes upload = rng.bytes(600'000);  // > 1000 cells: needs SENDMEs

  bt::PathConstraints c;
  c.last_hop = box.fingerprint();
  client->build_circuit(c, [&](bt::CircuitOrigin* circ) {
    ASSERT_NE(circ, nullptr);
    bt::Stream* stream = circ->open_stream({box.addr(), 9000}, {});
    stream->set_on_connected([&upload, stream] {
      stream->send(upload);
      stream->end();
    });
  });
  bed.run();
  EXPECT_EQ(app.received, upload);
  EXPECT_TRUE(app.ended);
}

TEST(TorE2E, CoverDropCellsAbsorbedAtExit) {
  bt::Testbed bed;
  bed.finalize();
  auto client = bed.make_client("alice");
  bt::CircuitOrigin* circ = nullptr;
  client->build_circuit({}, [&](bt::CircuitOrigin* c) { circ = c; });
  bed.run();
  ASSERT_NE(circ, nullptr);

  bt::Router* last = bed.router_by_fingerprint(circ->path().back().fingerprint());
  ASSERT_NE(last, nullptr);
  const auto before = last->counters().cells_dropped;
  for (int i = 0; i < 25; ++i) {
    bt::RelayCell drop;
    drop.relay_cmd = bt::RelayCommand::Drop;
    drop.data = bu::Bytes(bt::kRelayDataMax, 0);
    circ->send_relay(std::move(drop));
  }
  bed.run();
  EXPECT_EQ(last->counters().cells_dropped, before + 25);
}

TEST(TorE2E, DestroyTearsDownWholeCircuit) {
  bt::Testbed bed;
  bed.finalize();
  auto client = bed.make_client("alice");
  bt::CircuitOrigin* circ = nullptr;
  client->build_circuit({}, [&](bt::CircuitOrigin* c) { circ = c; });
  bed.run();
  ASSERT_NE(circ, nullptr);

  bool destroyed_cb = false;
  circ->set_on_destroy([&] { destroyed_cb = true; });
  circ->destroy();
  client->forget(circ);
  bed.run();
  EXPECT_TRUE(destroyed_cb);
  EXPECT_EQ(client->open_circuits(), 0u);
}

TEST(TorE2E, TwoClientsConcurrentFetches) {
  bt::Testbed bed;
  bed.finalize();
  bed.add_web_server(web_endpoint().addr, [](const std::string& path) {
    return bu::to_bytes("body:" + path);
  });
  auto alice = bed.make_client("alice");
  auto bob = bed.make_client("bob");
  auto r1 = fetch_over_tor(bed, *alice, "/a");
  auto r2 = fetch_over_tor(bed, *bob, "/b");
  EXPECT_EQ(bu::to_string(r1.body), "body:/a");
  EXPECT_EQ(bu::to_string(r2.body), "body:/b");
}

TEST(TorE2E, ManySequentialStreamsOnOneCircuit) {
  bt::Testbed bed;
  bed.finalize();
  bed.add_web_server(web_endpoint().addr, [](const std::string& path) {
    return bu::to_bytes("R" + path);
  });
  auto client = bed.make_client("alice");
  bt::PathConstraints c;
  c.exit_to = web_endpoint();
  bt::CircuitOrigin* circ = nullptr;
  client->build_circuit(c, [&](bt::CircuitOrigin* built) { circ = built; });
  bed.run();
  ASSERT_NE(circ, nullptr);

  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    bt::Stream::Callbacks cbs;
    auto body = std::make_shared<bu::Bytes>();
    const std::string path = "/r" + std::to_string(i);
    cbs.on_data = [body](bu::ByteView d) { bu::append(*body, d); };
    cbs.on_end = [body, &completed, path] {
      EXPECT_EQ(bu::to_string(*body), "R" + path);
      ++completed;
    };
    bt::Stream* stream = circ->open_stream(web_endpoint(), std::move(cbs));
    stream->set_on_connected([stream, path] { stream->send(bu::to_bytes("GET " + path + "\n")); });
    bed.run();
  }
  EXPECT_EQ(completed, 10);
}
