// Static verifier: lint diagnostics, capability inference over every host
// module, the static cost lower bound, and the verify_upload admission
// decision the server takes before Container::install.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/api.hpp"
#include "functions/library.hpp"
#include "script/analyzer.hpp"
#include "script/parser.hpp"

namespace bc = bento::core;
namespace sc = bento::script;
namespace sb = bento::sandbox;

namespace {

sc::AnalysisResult analyze(const std::string& source) {
  return sc::analyze(*sc::parse(source));
}

/// First diagnostic with the given code, or nullptr.
const sc::Diagnostic* find_code(const sc::AnalysisResult& result,
                                const std::string& code) {
  for (const auto& d : result.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

bc::FunctionManifest manifest_with(std::vector<sb::Syscall> required) {
  bc::FunctionManifest m;
  m.name = "unit";
  m.required = std::move(required);
  return m;
}

}  // namespace

// ---------------------------------------------------------------- lints ----

TEST(Analyzer, UnknownNameIsBS101) {
  const auto result = analyze("x = missing + 1\n");
  const auto* d = find_code(result, "BS101");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, sc::Severity::Error);
  EXPECT_EQ(d->line, 1);
  EXPECT_NE(d->message.find("missing"), std::string::npos);
  EXPECT_TRUE(result.has_errors());
}

TEST(Analyzer, UseBeforeDefinitionIsBS102) {
  const auto result = analyze("x = later\nlater = 1\n");
  const auto* d = find_code(result, "BS102");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 1);
  // The same name defined before use is fine.
  EXPECT_EQ(find_code(analyze("later = 1\nx = later\n"), "BS102"), nullptr);
}

TEST(Analyzer, FunctionBodyMayUseLaterGlobals) {
  // Bodies run after load, so forward references to globals are legal.
  const auto result = analyze(
      "def on_message(msg):\n"
      "    api.send(greeting)\n"
      "greeting = \"hi\"\n");
  EXPECT_FALSE(result.has_errors());
}

TEST(Analyzer, UnknownModuleAttributeIsBS103) {
  const auto result = analyze("def on_install(args):\n    fs.chmod(\"f\")\n");
  const auto* d = find_code(result, "BS103");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("chmod"), std::string::npos);
}

TEST(Analyzer, BindingArityMismatchIsBS104) {
  // fs.write takes exactly two arguments.
  const auto result = analyze("def on_install(args):\n    fs.write(\"f\")\n");
  ASSERT_NE(find_code(result, "BS104"), nullptr);
}

TEST(Analyzer, BuiltinArityMismatchIsBS104) {
  ASSERT_NE(find_code(analyze("x = len()\n"), "BS104"), nullptr);
  EXPECT_EQ(find_code(analyze("x = len(\"abc\")\n"), "BS104"), nullptr);
}

TEST(Analyzer, UserFunctionArityMismatchIsBS104) {
  const auto result = analyze(
      "def add(a, b):\n"
      "    return a + b\n"
      "x = add(1)\n");
  const auto* d = find_code(result, "BS104");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 3);
}

TEST(Analyzer, NonCallableAttributeIsBS104) {
  // bento.self is a plain attribute, not a binding.
  ASSERT_NE(
      find_code(analyze("def on_install(args):\n    x = bento.self()\n"), "BS104"),
      nullptr);
  EXPECT_EQ(
      find_code(analyze("def on_install(args):\n    x = bento.self\n"), "BS104"),
      nullptr);
}

TEST(Analyzer, UnreachableStatementIsBS110) {
  const auto result = analyze(
      "def on_message(msg):\n"
      "    return 1\n"
      "    api.send(\"never\")\n");
  const auto* d = find_code(result, "BS110");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, sc::Severity::Warning);
  EXPECT_EQ(d->line, 3);
  EXPECT_FALSE(result.has_errors());  // warnings never block an upload
}

TEST(Analyzer, ConstantConditionWhileIsBS111) {
  ASSERT_NE(find_code(analyze("def on_message(msg):\n"
                              "    while True:\n"
                              "        x = 1\n"),
                      "BS111"),
            nullptr);
  // A reachable break (even conditional) silences the lint.
  EXPECT_EQ(find_code(analyze("def on_message(msg):\n"
                              "    while True:\n"
                              "        if msg == \"stop\":\n"
                              "            break\n"),
                      "BS111"),
            nullptr);
  // So does a return.
  EXPECT_EQ(find_code(analyze("def on_message(msg):\n"
                              "    while True:\n"
                              "        return msg\n"),
                      "BS111"),
            nullptr);
}

TEST(Analyzer, MissingEntryPointsIsBS112) {
  const auto result = analyze("x = 1\n");
  const auto* d = find_code(result, "BS112");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, sc::Severity::Warning);
  // Any of the three entry points satisfies the lint.
  EXPECT_EQ(find_code(analyze("def on_install(args):\n    pass\n"), "BS112"),
            nullptr);
  EXPECT_EQ(find_code(analyze("def on_message(msg):\n    pass\n"), "BS112"),
            nullptr);
  EXPECT_EQ(find_code(analyze("def on_shutdown():\n    pass\n"), "BS112"),
            nullptr);
}

// -------------------------------------------------- capability inference ----

TEST(Analyzer, InfersCapabilitiesForEveryHostModule) {
  const auto result = analyze(
      "def on_message(msg):\n"
      "    api.send(\"x\")\n"
      "    fs.write(\"f\", msg)\n"
      "    fs.read(\"f\")\n"
      "    fs.delete(\"f\")\n"
      "    net.get(\"example.com:80/\", on_message)\n"
      "    r = os.urandom(8)\n"
      "    t = time.now()\n"
      "    z = zlib.compress(msg)\n"
      "    bento.deploy(bento.self, \"img\", \"src\", \"\", \"\", on_message)\n");
  EXPECT_FALSE(result.has_errors());

  const std::set<std::string> want_modules = {"api", "fs",   "net",  "os",
                                              "time", "zlib", "bento"};
  EXPECT_EQ(result.modules, want_modules);

  const auto syscalls = result.required_syscalls();
  EXPECT_TRUE(syscalls.contains(sb::Syscall::FsWrite));
  EXPECT_TRUE(syscalls.contains(sb::Syscall::FsRead));
  EXPECT_TRUE(syscalls.contains(sb::Syscall::FsDelete));
  EXPECT_TRUE(syscalls.contains(sb::Syscall::NetConnect));
  EXPECT_TRUE(syscalls.contains(sb::Syscall::Random));
  EXPECT_TRUE(syscalls.contains(sb::Syscall::Clock));
  EXPECT_TRUE(syscalls.contains(sb::Syscall::SpawnFunction));

  // api and zlib are capability-free.
  EXPECT_EQ(syscalls.size(), 7u);
}

TEST(Analyzer, CapabilityRecordsFirstUseLine) {
  const auto result = analyze(
      "def on_message(msg):\n"
      "    fs.write(\"a\", msg)\n"
      "    fs.write(\"b\", msg)\n");
  ASSERT_EQ(result.required.size(), 1u);
  EXPECT_EQ(result.required[0].syscall, sb::Syscall::FsWrite);
  EXPECT_EQ(result.required[0].capability, "fs.write");
  EXPECT_EQ(result.required[0].line, 2);
}

TEST(Analyzer, BareModuleReferenceClaimsWholeModule) {
  // Aliasing a module makes every binding reachable; the verifier must
  // over-approximate rather than miss the escape.
  const auto result = analyze(
      "def on_message(msg):\n"
      "    f = fs\n"
      "    f.delete(msg)\n");
  EXPECT_FALSE(result.has_errors());
  const auto syscalls = result.required_syscalls();
  EXPECT_TRUE(syscalls.contains(sb::Syscall::FsWrite));
  EXPECT_TRUE(syscalls.contains(sb::Syscall::FsRead));
  EXPECT_TRUE(syscalls.contains(sb::Syscall::FsDelete));
}

TEST(Analyzer, ShadowedModuleNameIsOrdinaryValue) {
  // Rebinding `fs` severs the host module: no capabilities, no BS103.
  const auto result = analyze(
      "fs = 7\n"
      "def on_message(msg):\n"
      "    x = fs\n"
      "    api.send(str(x))\n");
  EXPECT_FALSE(result.has_errors());
  EXPECT_FALSE(result.modules.contains("fs"));
  EXPECT_TRUE(result.required_syscalls().empty());
}

// ----------------------------------------------------------- cost model ----

TEST(Analyzer, CostCountsLiteralRangeLoops) {
  const auto straight = analyze("def on_message(msg):\n    x = 1\nx = 0\n");
  const auto loop = analyze(
      "x = 0\n"
      "for i in range(1000):\n"
      "    x = x + i\n"
      "def on_message(msg):\n"
      "    api.send(str(x))\n");
  // 1000 iterations of (driver + assign + expr) dominate the straight-line
  // version; exact constants are an implementation detail.
  EXPECT_GE(loop.min_steps, 1000u);
  EXPECT_LT(straight.min_steps, 100u);
}

TEST(Analyzer, CostChargesOnInstallBody) {
  const auto bare = analyze("def on_message(msg):\n    pass\n");
  const auto with_install = analyze(
      "def on_message(msg):\n    pass\n"
      "def on_install(args):\n"
      "    for i in range(500):\n"
      "        x = i\n");
  EXPECT_GT(with_install.min_steps, bare.min_steps + 500);
}

TEST(Analyzer, InfiniteLoopSaturatesCost) {
  const auto result = analyze("while True:\n    pass\n");
  EXPECT_GT(result.min_steps, std::uint64_t{1} << 40);
}

TEST(Analyzer, WhileMayRunZeroTimes) {
  // A lower bound cannot assume the loop body ever executes.
  const auto result = analyze(
      "def on_message(msg):\n"
      "    n = len(msg)\n"
      "    while n > 0:\n"
      "        n = n - 1\n");
  EXPECT_LT(result.min_steps, 50u);
}

// --------------------------------------------------------- verify_upload ----

TEST(VerifyUpload, RejectsManifestUnderstatingCapabilities) {
  const auto program = sc::parse(
      "def on_message(msg):\n"
      "    fs.write(\"f\", msg)\n");
  const auto report = bc::verify_upload(*program, manifest_with({}));
  EXPECT_FALSE(report.decision.admitted);
  // The reason names the capability, the missing syscall, and the line.
  EXPECT_NE(report.decision.reason.find("line 2"), std::string::npos)
      << report.decision.reason;
  EXPECT_NE(report.decision.reason.find("fs.write"), std::string::npos);
  EXPECT_NE(report.decision.reason.find("fs_write"), std::string::npos);
}

TEST(VerifyUpload, AdmitsWhenManifestCoversInferredSet) {
  const auto program = sc::parse(
      "def on_message(msg):\n"
      "    fs.write(\"f\", msg)\n"
      "    api.send(str(time.now()))\n");
  const auto report = bc::verify_upload(
      *program, manifest_with({sb::Syscall::FsWrite, sb::Syscall::Clock}));
  EXPECT_TRUE(report.decision.admitted) << report.decision.reason;
}

TEST(VerifyUpload, RejectsOnStaticAnalysisError) {
  const auto program = sc::parse("x = missing\n");
  const auto report = bc::verify_upload(*program, manifest_with({}));
  EXPECT_FALSE(report.decision.admitted);
  EXPECT_NE(report.decision.reason.find("BS101"), std::string::npos);
}

TEST(VerifyUpload, WarningsDoNotBlockAdmission) {
  const auto program = sc::parse("x = 1\n");  // BS112 only
  const auto report = bc::verify_upload(*program, manifest_with({}));
  EXPECT_TRUE(report.decision.admitted) << report.decision.reason;
  EXPECT_NE(find_code(report.analysis, "BS112"), nullptr);
}

TEST(VerifyUpload, RejectsWhenCostExceedsCpuBudget) {
  const auto program = sc::parse(
      "def on_message(msg):\n    pass\n"
      "for i in range(100000):\n"
      "    x = i\n");
  auto manifest = manifest_with({});
  manifest.resources.cpu_instructions = 1000;
  const auto report = bc::verify_upload(*program, manifest);
  EXPECT_FALSE(report.decision.admitted);
  EXPECT_NE(report.decision.reason.find("lower bound"), std::string::npos);
}

TEST(VerifyUpload, LibraryFunctionsPassTheirOwnManifests) {
  namespace bf = bento::functions;
  const struct {
    const char* name;
    const std::string& source;
    bc::FunctionManifest manifest;
  } cases[] = {
      {"browser", bf::browser_source(), bf::browser_manifest()},
      {"dropbox", bf::dropbox_source(), bf::dropbox_manifest()},
      {"cover", bf::cover_source(), bf::cover_manifest()},
      {"policy-query", bf::policy_query_source(), bf::policy_query_manifest()},
  };
  for (const auto& c : cases) {
    const auto program = sc::parse(c.source);
    const auto report = bc::verify_upload(*program, c.manifest);
    EXPECT_TRUE(report.decision.admitted)
        << c.name << ": " << report.decision.reason;
    EXPECT_FALSE(report.analysis.has_errors()) << c.name;
  }
}
