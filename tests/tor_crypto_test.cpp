// Onion-layer crypto and the ntor handshake.
#include <gtest/gtest.h>

#include "crypto/dh.hpp"
#include "crypto/sign.hpp"
#include "tor/ntor.hpp"
#include "tor/relaycrypto.hpp"
#include "util/rng.hpp"

namespace bt = bento::tor;
namespace bc = bento::crypto;
namespace bu = bento::util;

namespace {
bt::LayerKeys test_keys(std::uint64_t seed) {
  bu::Rng rng(seed);
  return bt::LayerKeys::derive(rng.bytes(32), "test-layer");
}

std::array<std::uint8_t, bt::kCellPayloadLen> make_payload(
    bt::RelayCommand cmd, std::uint16_t stream, const std::string& data) {
  bt::RelayCell rc;
  rc.relay_cmd = cmd;
  rc.stream_id = stream;
  rc.data = bu::to_bytes(data);
  return rc.pack();
}
}  // namespace

TEST(LayerKeys, DistinctComponents) {
  auto k = test_keys(1);
  EXPECT_NE(k.kf, k.kb);
  EXPECT_NE(bu::Bytes(k.df.begin(), k.df.end()), bu::Bytes(k.db.begin(), k.db.end()));
}

TEST(LayerCrypto, SealCheckForwardSingleHop) {
  auto keys = test_keys(2);
  bt::LayerCrypto origin(keys), relay(keys);

  auto payload = make_payload(bt::RelayCommand::Data, 1, "payload one");
  origin.seal_forward(payload);
  origin.crypt_forward(payload);

  relay.crypt_forward(payload);
  EXPECT_TRUE(relay.check_forward(payload));
  bt::RelayCell rc = bt::RelayCell::unpack(payload);
  EXPECT_EQ(bu::to_string(rc.data), "payload one");
}

TEST(LayerCrypto, RunningDigestCoversSequence) {
  auto keys = test_keys(3);
  bt::LayerCrypto origin(keys), relay(keys);
  for (int i = 0; i < 20; ++i) {
    auto payload = make_payload(bt::RelayCommand::Data, 5, "cell " + std::to_string(i));
    origin.seal_forward(payload);
    origin.crypt_forward(payload);
    relay.crypt_forward(payload);
    ASSERT_TRUE(relay.check_forward(payload)) << i;
  }
}

TEST(LayerCrypto, TamperedCellNotRecognized) {
  auto keys = test_keys(4);
  bt::LayerCrypto origin(keys), relay(keys);
  auto payload = make_payload(bt::RelayCommand::Data, 1, "x");
  origin.seal_forward(payload);
  origin.crypt_forward(payload);
  payload[100] ^= 1;
  relay.crypt_forward(payload);
  EXPECT_FALSE(relay.check_forward(payload));
}

TEST(LayerCrypto, FailedCheckDoesNotDesyncState) {
  auto keys = test_keys(5);
  bt::LayerCrypto origin(keys), relay(keys);

  // A cell destined for a later hop looks random here: check must fail and
  // must not advance the digest state.
  auto not_ours = make_payload(bt::RelayCommand::Data, 9, "later hop");
  bu::Rng rng(6);
  bu::Bytes noise = rng.bytes(bt::kCellPayloadLen);
  std::copy(noise.begin(), noise.end(), not_ours.begin());
  EXPECT_FALSE(relay.check_forward(not_ours));

  auto ours = make_payload(bt::RelayCommand::Data, 1, "ours");
  origin.seal_forward(ours);
  origin.crypt_forward(ours);
  relay.crypt_forward(ours);
  EXPECT_TRUE(relay.check_forward(ours));
}

// Regression for the middle-relay forwarding path: a cell that passes the
// cheap recognized==0 pre-check but fails the digest comparison (so the
// full hash runs) must leave the payload — including the digest field —
// and the relay's running digest state bit-identical, or every later cell
// on the circuit would be mis-rejected.
TEST(LayerCrypto, FailedCheckLeavesPayloadAndStateBitIdentical) {
  auto keys = test_keys(8);
  bt::LayerCrypto origin(keys);
  bt::LayerCrypto relay(keys);    // takes the failed check
  bt::LayerCrypto control(keys);  // never sees the bad cell

  // Warm all three with one legitimate exchange so running state is nontrivial.
  auto warm = make_payload(bt::RelayCommand::Data, 1, "warmup");
  origin.seal_forward(warm);
  origin.crypt_forward(warm);
  auto warm_control = warm;
  relay.crypt_forward(warm);
  ASSERT_TRUE(relay.check_forward(warm));
  control.crypt_forward(warm_control);
  ASSERT_TRUE(control.check_forward(warm_control));

  // Crafted miss: recognized field zero (pre-check passes), digest wrong.
  auto bad = make_payload(bt::RelayCommand::Data, 2, "not for this hop");
  bad[5] = 0xde;  // digest field: arbitrary wrong value
  bad[6] = 0xad;
  bad[7] = 0xbe;
  bad[8] = 0xef;
  const auto before = bad;
  EXPECT_FALSE(relay.check_forward(bad));
  EXPECT_EQ(bad, before);  // payload (and its digest field) untouched

  // Running state identical to the control that never saw the bad cell:
  // the next legitimate cell must be accepted by both, producing identical
  // bytes at every step.
  auto next = make_payload(bt::RelayCommand::Data, 1, "after the miss");
  origin.seal_forward(next);
  origin.crypt_forward(next);
  auto next_control = next;
  relay.crypt_forward(next);
  control.crypt_forward(next_control);
  EXPECT_EQ(next, next_control);
  EXPECT_TRUE(relay.check_forward(next));
  EXPECT_TRUE(control.check_forward(next_control));
  EXPECT_EQ(next, next_control);
}

TEST(LayerCrypto, BackwardDirectionIndependent) {
  auto keys = test_keys(7);
  bt::LayerCrypto origin(keys), relay(keys);

  // Backward: relay seals, origin checks.
  auto payload = make_payload(bt::RelayCommand::Data, 2, "reply");
  relay.seal_backward(payload);
  relay.crypt_backward(payload);
  origin.crypt_backward(payload);
  EXPECT_TRUE(origin.check_backward(payload));
  EXPECT_EQ(bu::to_string(bt::RelayCell::unpack(payload).data), "reply");
}

TEST(LayerCrypto, ThreeHopOnionPeelsInOrder) {
  auto k1 = test_keys(10), k2 = test_keys(11), k3 = test_keys(12);
  bt::LayerCrypto o1(k1), o2(k2), o3(k3);   // origin's view of each hop
  bt::LayerCrypto r1(k1), r2(k2), r3(k3);   // each relay's view

  // Origin sends to hop 3: seal at hop 3, encrypt 3,2,1.
  auto payload = make_payload(bt::RelayCommand::Begin, 1, "addr");
  o3.seal_forward(payload);
  o3.crypt_forward(payload);
  o2.crypt_forward(payload);
  o1.crypt_forward(payload);

  r1.crypt_forward(payload);
  EXPECT_FALSE(r1.check_forward(payload));
  r2.crypt_forward(payload);
  EXPECT_FALSE(r2.check_forward(payload));
  r3.crypt_forward(payload);
  EXPECT_TRUE(r3.check_forward(payload));
  EXPECT_EQ(bt::RelayCell::unpack(payload).relay_cmd, bt::RelayCommand::Begin);
}

TEST(LayerCrypto, ThreeHopBackwardAccretesLayers) {
  auto k1 = test_keys(20), k2 = test_keys(21), k3 = test_keys(22);
  bt::LayerCrypto o1(k1), o2(k2), o3(k3);
  bt::LayerCrypto r1(k1), r2(k2), r3(k3);

  auto payload = make_payload(bt::RelayCommand::Data, 1, "from exit");
  r3.seal_backward(payload);
  r3.crypt_backward(payload);
  r2.crypt_backward(payload);
  r1.crypt_backward(payload);

  o1.crypt_backward(payload);
  EXPECT_FALSE(o1.check_backward(payload));
  o2.crypt_backward(payload);
  EXPECT_FALSE(o2.check_backward(payload));
  o3.crypt_backward(payload);
  EXPECT_TRUE(o3.check_backward(payload));
  EXPECT_EQ(bu::to_string(bt::RelayCell::unpack(payload).data), "from exit");
}

TEST(Ntor, HandshakeAgreesOnKeys) {
  bu::Rng rng(30);
  auto onion = bc::DhKeyPair::generate(rng);
  auto identity = bc::SigningKey::generate(rng);

  bt::NtorClientState state;
  bu::Bytes skin =
      bt::ntor_client_create(state, onion.public_value, identity.public_key(), rng);
  EXPECT_EQ(skin.size(), bt::kNtorOnionSkinLen);

  auto reply = bt::ntor_server_respond(onion, identity.public_key(), skin, rng);
  EXPECT_EQ(reply.created_payload.size(), bt::kNtorReplyLen);

  auto client_keys = bt::ntor_client_finish(state, reply.created_payload);
  ASSERT_TRUE(client_keys.has_value());
  EXPECT_EQ(client_keys->kf, reply.keys.kf);
  EXPECT_EQ(client_keys->kb, reply.keys.kb);
  EXPECT_EQ(client_keys->df, reply.keys.df);
}

TEST(Ntor, WrongOnionKeyFailsAuth) {
  bu::Rng rng(31);
  auto onion = bc::DhKeyPair::generate(rng);
  auto impostor = bc::DhKeyPair::generate(rng);
  auto identity = bc::SigningKey::generate(rng);

  bt::NtorClientState state;
  bu::Bytes skin =
      bt::ntor_client_create(state, onion.public_value, identity.public_key(), rng);
  // The impostor answers without knowing the real onion secret.
  auto reply = bt::ntor_server_respond(impostor, identity.public_key(), skin, rng);
  EXPECT_FALSE(bt::ntor_client_finish(state, reply.created_payload).has_value());
}

TEST(Ntor, WrongIdentityFailsAuth) {
  bu::Rng rng(32);
  auto onion = bc::DhKeyPair::generate(rng);
  auto identity = bc::SigningKey::generate(rng);
  auto other_identity = bc::SigningKey::generate(rng);

  bt::NtorClientState state;
  bu::Bytes skin =
      bt::ntor_client_create(state, onion.public_value, identity.public_key(), rng);
  auto reply = bt::ntor_server_respond(onion, other_identity.public_key(), skin, rng);
  EXPECT_FALSE(bt::ntor_client_finish(state, reply.created_payload).has_value());
}

TEST(Ntor, TamperedReplyFails) {
  bu::Rng rng(33);
  auto onion = bc::DhKeyPair::generate(rng);
  auto identity = bc::SigningKey::generate(rng);
  bt::NtorClientState state;
  bu::Bytes skin =
      bt::ntor_client_create(state, onion.public_value, identity.public_key(), rng);
  auto reply = bt::ntor_server_respond(onion, identity.public_key(), skin, rng);
  reply.created_payload[20] ^= 1;
  EXPECT_FALSE(bt::ntor_client_finish(state, reply.created_payload).has_value());
}

TEST(Ntor, MalformedSkinThrows) {
  bu::Rng rng(34);
  auto onion = bc::DhKeyPair::generate(rng);
  auto identity = bc::SigningKey::generate(rng);
  EXPECT_THROW(bt::ntor_server_respond(onion, identity.public_key(), bu::Bytes(5), rng),
               std::invalid_argument);
}

TEST(Ntor, WrongLengthReplyRejected) {
  bu::Rng rng(35);
  auto onion = bc::DhKeyPair::generate(rng);
  auto identity = bc::SigningKey::generate(rng);
  bt::NtorClientState state;
  bt::ntor_client_create(state, onion.public_value, identity.public_key(), rng);
  EXPECT_FALSE(bt::ntor_client_finish(state, bu::Bytes(10)).has_value());
}
