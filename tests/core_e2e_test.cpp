// Bento end-to-end: client discovers a box over the consensus, spawns a
// container (attested for python-op-sgx), uploads a BentoScript function,
// invokes it, and shuts it down — all over simulated Tor circuits.
#include <gtest/gtest.h>

#include "core/world.hpp"

namespace bc = bento::core;
namespace bt = bento::tor;
namespace bu = bento::util;

namespace {
constexpr char kEchoSource[] = R"(
def on_message(msg):
    api.send("echo: " + str(msg))
)";

struct Session {
  std::shared_ptr<bc::BentoConnection> conn;
  std::optional<bc::TokenPair> tokens;
  std::string error;
  std::vector<bu::Bytes> outputs;
};

/// Connects, spawns, uploads; runs the world to quiescence at each step.
Session establish(bc::BentoWorld& world, bc::BentoWorld::Client& client,
                  const std::string& box, const std::string& image,
                  const std::string& source, const std::string& native = "",
                  bu::Bytes args = {},
                  std::optional<bc::FunctionManifest> manifest_in = std::nullopt) {
  Session s;
  client.bento->connect(box, [&](std::shared_ptr<bc::BentoConnection> conn) {
    s.conn = std::move(conn);
  });
  world.run();
  if (s.conn == nullptr) {
    s.error = "connect failed";
    return s;
  }
  s.conn->set_output_handler([&s](bu::Bytes out) { s.outputs.push_back(std::move(out)); });

  bool spawn_ok = false;
  s.conn->spawn(image, [&](bool ok, std::string err) {
    spawn_ok = ok;
    if (!ok) s.error = err;
  });
  world.run();
  if (!spawn_ok) return s;

  bc::FunctionManifest manifest;
  if (manifest_in.has_value()) {
    manifest = *manifest_in;
  } else {
    manifest.name = "test-fn";
    manifest.required = {bento::sandbox::Syscall::Clock,
                         bento::sandbox::Syscall::Random,
                         bento::sandbox::Syscall::FsRead,
                         bento::sandbox::Syscall::FsWrite,
                         bento::sandbox::Syscall::FsDelete};
    manifest.resources.memory_bytes = 8 << 20;
    manifest.resources.cpu_instructions = 10'000'000;
    manifest.resources.disk_bytes = 4 << 20;
    manifest.resources.network_bytes = 32 << 20;
  }
  manifest.image = image;

  s.conn->upload(manifest, source, native, args,
                 [&](std::optional<bc::TokenPair> tokens, std::string err) {
                   s.tokens = std::move(tokens);
                   if (!err.empty()) s.error = err;
                 });
  world.run();
  return s;
}
}  // namespace

TEST(BentoE2E, DiscoverBoxesAndPolicies) {
  bc::BentoWorld world;
  world.start();
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  EXPECT_EQ(boxes.size(), world.bed().router_count());
  // Advertised policy is parseable from the descriptor.
  const auto* desc = world.bed().consensus().find(boxes[0]);
  ASSERT_NE(desc, nullptr);
  auto policy = bc::BentoClient::advertised_policy(*desc);
  ASSERT_TRUE(policy.has_value());
  EXPECT_TRUE(policy->offers_image(bc::kImagePython));
}

TEST(BentoE2E, GetPolicyOverTor) {
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());

  std::optional<bc::MiddleboxPolicy> policy;
  client.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> conn) {
    ASSERT_NE(conn, nullptr);
    conn->get_policy([&](std::optional<bc::MiddleboxPolicy> p) { policy = std::move(p); });
  });
  world.run();
  ASSERT_TRUE(policy.has_value());
  EXPECT_TRUE(policy->allowed.allows(bento::sandbox::Syscall::FsWrite));
}

TEST(BentoE2E, UploadInvokeEchoPythonImage) {
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());

  auto s = establish(world, client, boxes[1], bc::kImagePython, kEchoSource);
  ASSERT_TRUE(s.tokens.has_value()) << s.error;
  EXPECT_FALSE(s.conn->attested());  // plain image: no conclave

  s.conn->invoke(s.tokens->invocation.bytes(), bu::to_bytes("hello"));
  world.run();
  ASSERT_EQ(s.outputs.size(), 1u);
  EXPECT_EQ(bu::to_string(s.outputs[0]), "echo: hello");

  // Second invocation reuses the same function instance.
  s.conn->invoke(s.tokens->invocation.bytes(), bu::to_bytes("again"));
  world.run();
  ASSERT_EQ(s.outputs.size(), 2u);
  EXPECT_EQ(bu::to_string(s.outputs[1]), "echo: again");
}

TEST(BentoE2E, SgxImageAttestsAndSealsUpload) {
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());

  auto s = establish(world, client, boxes[0], bc::kImagePythonOpSgx, kEchoSource);
  ASSERT_TRUE(s.tokens.has_value()) << s.error;
  EXPECT_TRUE(s.conn->attested());

  s.conn->invoke(s.tokens->invocation.bytes(), bu::to_bytes("secret"));
  world.run();
  ASSERT_EQ(s.outputs.size(), 1u);
  EXPECT_EQ(bu::to_string(s.outputs[0]), "echo: secret");
}

TEST(BentoE2E, AttestationFailsWhenTcbOutdated) {
  bc::BentoWorld world;
  world.start();
  world.ias().advance_tcb(99);  // a new vulnerability disclosure
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());

  auto s = establish(world, client, boxes[0], bc::kImagePythonOpSgx, kEchoSource);
  EXPECT_FALSE(s.tokens.has_value());
  EXPECT_NE(s.error.find("TCB"), std::string::npos) << s.error;
}

TEST(BentoE2E, ManifestExceedingPolicyRejected) {
  bc::BentoWorldOptions options;
  options.policy = bc::MiddleboxPolicy::no_storage();
  bc::BentoWorld world(options);
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());

  bc::FunctionManifest manifest;
  manifest.name = "writer";
  manifest.required = {bento::sandbox::Syscall::FsWrite};
  manifest.resources.memory_bytes = 1 << 20;
  manifest.resources.cpu_instructions = 1'000'000;
  manifest.resources.disk_bytes = 0;
  manifest.resources.network_bytes = 1 << 20;

  auto s = establish(world, client, boxes[0], bc::kImagePython, kEchoSource, "", {},
                     manifest);
  EXPECT_FALSE(s.tokens.has_value());
  EXPECT_NE(s.error.find("rejected"), std::string::npos) << s.error;
  EXPECT_EQ(world.server(0).counters().rejected_manifests +
                world.server_for(boxes[0])->counters().rejected_manifests,
            1u);
}

TEST(BentoE2E, FunctionExceedingManifestSyscallsDies) {
  // Manifest does not request FsWrite; the function tries anyway.
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());

  bc::FunctionManifest manifest;
  manifest.name = "sneaky";
  manifest.required = {};  // nothing
  manifest.resources.memory_bytes = 1 << 20;
  manifest.resources.cpu_instructions = 1'000'000;
  manifest.resources.disk_bytes = 1 << 20;
  manifest.resources.network_bytes = 1 << 20;

  const std::string source = R"(
def on_message(msg):
    fs.write("x", msg)
)";
  auto s = establish(world, client, boxes[0], bc::kImagePython, source, "", {},
                     manifest);
  ASSERT_TRUE(s.tokens.has_value()) << s.error;

  bc::BentoServer* server = world.server_for(boxes[0]);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->live_containers(), 1u);

  s.conn->invoke(s.tokens->invocation.bytes(), bu::to_bytes("x"));
  world.run();
  EXPECT_EQ(server->live_containers(), 0u);  // killed + reclaimed
  EXPECT_EQ(server->counters().deaths, 1u);
}

TEST(BentoE2E, RunawayLoopKilledByCpuBudget) {
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());

  const std::string source = R"(
def on_message(msg):
    while True:
        pass
)";
  auto s = establish(world, client, boxes[0], bc::kImagePython, source);
  ASSERT_TRUE(s.tokens.has_value()) << s.error;
  s.conn->invoke(s.tokens->invocation.bytes(), bu::to_bytes("go"));
  world.run();
  bc::BentoServer* server = world.server_for(boxes[0]);
  EXPECT_EQ(server->live_containers(), 0u);
  EXPECT_EQ(server->counters().deaths, 1u);
}

TEST(BentoE2E, SyntaxErrorFailsUpload) {
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  auto s = establish(world, client, boxes[0], bc::kImagePython,
                     "def broken(:\n    pass\n");
  EXPECT_FALSE(s.tokens.has_value());
  EXPECT_FALSE(s.error.empty());
}

TEST(BentoE2E, EnforceModeRejectsManifestUnderstatingFunction) {
  // Under VerifyMode::Enforce the static verifier refuses the upload before
  // the container ever runs — with a line-numbered reason naming the
  // capability the manifest failed to request.
  bc::BentoWorldOptions options;
  options.verify = bc::VerifyMode::Enforce;
  bc::BentoWorld world(options);
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());

  bc::FunctionManifest manifest;
  manifest.name = "sneaky";
  manifest.required = {};  // claims nothing...
  manifest.resources.memory_bytes = 1 << 20;
  manifest.resources.cpu_instructions = 1'000'000;
  manifest.resources.disk_bytes = 1 << 20;
  manifest.resources.network_bytes = 1 << 20;

  const std::string source = R"(
def on_message(msg):
    fs.write("x", msg)
)";
  auto s = establish(world, client, boxes[0], bc::kImagePython, source, "", {},
                     manifest);
  EXPECT_FALSE(s.tokens.has_value());
  EXPECT_NE(s.error.find("static verifier"), std::string::npos) << s.error;
  EXPECT_NE(s.error.find("line 3"), std::string::npos) << s.error;
  EXPECT_NE(s.error.find("fs.write"), std::string::npos) << s.error;

  bc::BentoServer* server = world.server_for(boxes[0]);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->counters().rejected_static, 1u);
  EXPECT_EQ(server->live_containers(), 0u);  // the spawned container is gone
}

TEST(BentoE2E, EnforceModeAdmitsCleanFunctionEndToEnd) {
  bc::BentoWorldOptions options;
  options.verify = bc::VerifyMode::Enforce;
  bc::BentoWorld world(options);
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());

  auto s = establish(world, client, boxes[1], bc::kImagePython, kEchoSource);
  ASSERT_TRUE(s.tokens.has_value()) << s.error;

  s.conn->invoke(s.tokens->invocation.bytes(), bu::to_bytes("verified"));
  world.run();
  ASSERT_EQ(s.outputs.size(), 1u);
  EXPECT_EQ(bu::to_string(s.outputs[0]), "echo: verified");
  EXPECT_EQ(world.server_for(boxes[1])->counters().rejected_static, 0u);
}

TEST(BentoE2E, WarnModeAdmitsUnderstatingFunction) {
  // The default mode only logs what Enforce would reject; the dynamic
  // seccomp-style kill (FunctionExceedingManifestSyscallsDies) still rules.
  bc::BentoWorld world;  // default verify = Warn
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());

  bc::FunctionManifest manifest;
  manifest.name = "sneaky";
  manifest.required = {};
  manifest.resources.memory_bytes = 1 << 20;
  manifest.resources.cpu_instructions = 1'000'000;
  manifest.resources.disk_bytes = 1 << 20;
  manifest.resources.network_bytes = 1 << 20;

  auto s = establish(world, client, boxes[0], bc::kImagePython,
                     "def on_message(msg):\n    fs.write(\"x\", msg)\n", "", {},
                     manifest);
  EXPECT_TRUE(s.tokens.has_value()) << s.error;
  EXPECT_EQ(world.server_for(boxes[0])->counters().rejected_static, 0u);
}

TEST(BentoE2E, InvalidTokenRejected) {
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  auto s = establish(world, client, boxes[0], bc::kImagePython, kEchoSource);
  ASSERT_TRUE(s.tokens.has_value()) << s.error;

  s.conn->invoke(bu::Bytes(bc::kTokenLen, 0x00), bu::to_bytes("hi"));
  world.run();
  EXPECT_TRUE(s.outputs.empty());
}

TEST(BentoE2E, ShutdownTokenSeparatesRights) {
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  auto s = establish(world, client, boxes[0], bc::kImagePython, kEchoSource);
  ASSERT_TRUE(s.tokens.has_value()) << s.error;
  bc::BentoServer* server = world.server_for(boxes[0]);

  // The invocation token must NOT grant shutdown.
  bool shutdown_ok = true;
  s.conn->shutdown(s.tokens->invocation.bytes(), [&](bool ok) { shutdown_ok = ok; });
  world.run();
  EXPECT_FALSE(shutdown_ok);
  EXPECT_EQ(server->live_containers(), 1u);

  // The shutdown token does.
  s.conn->shutdown(s.tokens->shutdown.bytes(), [&](bool ok) { shutdown_ok = ok; });
  world.run();
  EXPECT_TRUE(shutdown_ok);
  EXPECT_EQ(server->live_containers(), 0u);
}

TEST(BentoE2E, InvocationTokenShareableAcrossClients) {
  bc::BentoWorld world;
  world.start();
  auto alice = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  auto s = establish(world, alice, boxes[0], bc::kImagePython, kEchoSource);
  ASSERT_TRUE(s.tokens.has_value()) << s.error;

  // Bob, a different client with a different circuit, uses the shared
  // invocation token.
  auto bob = world.make_client("bob");
  std::vector<bu::Bytes> bob_outputs;
  bob.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> conn) {
    ASSERT_NE(conn, nullptr);
    conn->set_output_handler([&](bu::Bytes out) { bob_outputs.push_back(std::move(out)); });
    conn->invoke(s.tokens->invocation.bytes(), bu::to_bytes("from bob"));
  });
  world.run();
  ASSERT_EQ(bob_outputs.size(), 1u);
  EXPECT_EQ(bu::to_string(bob_outputs[0]), "echo: from bob");
}

TEST(BentoE2E, StatefulFunctionPersistsAcrossInvocations) {
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());

  const std::string source = R"(
state = {"n": 0}
def on_message(msg):
    state["n"] += 1
    api.send(str(state["n"]))
)";
  auto s = establish(world, client, boxes[0], bc::kImagePython, source);
  ASSERT_TRUE(s.tokens.has_value()) << s.error;
  for (int i = 0; i < 3; ++i) {
    s.conn->invoke(s.tokens->invocation.bytes(), {});
    world.run();
  }
  ASSERT_EQ(s.outputs.size(), 3u);
  EXPECT_EQ(bu::to_string(s.outputs[2]), "3");
}

TEST(BentoE2E, FsProtectKeepsOperatorBlind) {
  // Paper §6.2: in the SGX image all function writes are encrypted with an
  // ephemeral key; the operator sees only ciphertext.
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());

  const std::string source = R"(
def on_message(msg):
    fs.write("stash.bin", msg)
    api.send("stored")
)";
  auto s = establish(world, client, boxes[0], bc::kImagePythonOpSgx, source);
  ASSERT_TRUE(s.tokens.has_value()) << s.error;
  s.conn->invoke(s.tokens->invocation.bytes(),
                 bu::to_bytes("abusive-or-sensitive-content"));
  world.run();
  ASSERT_EQ(s.outputs.size(), 1u);

  // Operator inspects the conclave's backing store: ciphertext only.
  bc::BentoServer* server = world.server_for(boxes[0]);
  ASSERT_EQ(server->live_containers(), 1u);
  // Find the container and inspect FsProtect from the operator's side.
  // (Test-only reach into the world: the operator can always read disk.)
  bool found_plaintext = false;
  for (std::size_t i = 0; i < world.server_count(); ++i) {
    (void)i;
  }
  // The container API is internal; instead verify via the conclave
  // contract exercised in tee_test. Here we assert the function ran inside
  // SGX and produced output.
  EXPECT_EQ(bu::to_string(s.outputs[0]), "stored");
  EXPECT_FALSE(found_plaintext);
}

TEST(BentoE2E, SgxUnavailableBoxRefusesConclaveImage) {
  bc::BentoWorldOptions options;
  options.sgx_available = false;
  bc::BentoWorld world(options);
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  auto s = establish(world, client, boxes[0], bc::kImagePythonOpSgx, kEchoSource);
  EXPECT_FALSE(s.tokens.has_value());
  EXPECT_NE(s.error.find("SGX"), std::string::npos) << s.error;
}

TEST(BentoE2E, FunctionUsesClockAndRandom) {
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  const std::string source = R"(
def on_message(msg):
    t = time.now()
    r = os.urandom(8)
    api.send(str(len(r)) + ":" + str(t >= 0))
)";
  auto s = establish(world, client, boxes[0], bc::kImagePython, source);
  ASSERT_TRUE(s.tokens.has_value()) << s.error;
  s.conn->invoke(s.tokens->invocation.bytes(), {});
  world.run();
  ASSERT_EQ(s.outputs.size(), 1u);
  EXPECT_EQ(bu::to_string(s.outputs[0]), "8:True");
}

TEST(BentoE2E, TimerDrivenFunction) {
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  const std::string source = R"(
def tick():
    api.send("tick")
def on_message(msg):
    time.after(1.0, tick)
    api.send("armed")
)";
  auto s = establish(world, client, boxes[0], bc::kImagePython, source);
  ASSERT_TRUE(s.tokens.has_value()) << s.error;
  s.conn->invoke(s.tokens->invocation.bytes(), {});
  world.run();
  ASSERT_EQ(s.outputs.size(), 2u);
  EXPECT_EQ(bu::to_string(s.outputs[0]), "armed");
  EXPECT_EQ(bu::to_string(s.outputs[1]), "tick");
}

TEST(BentoE2E, FunctionFetchesClearnetViaExitPolicy) {
  bc::BentoWorld world;
  world.start();
  world.bed().add_web_server(bt::parse_addr("93.184.216.34"),
                             [](const std::string& path) {
                               return bu::to_bytes("web:" + path);
                             });
  auto client = world.make_client("alice");
  // Pick an exit relay's box (its netfilter allows clearnet).
  std::string exit_box;
  for (const auto& relay : world.bed().consensus().relays) {
    if (relay.flags.exit) exit_box = relay.fingerprint();
  }
  ASSERT_FALSE(exit_box.empty());

  const std::string source = R"(
def got(body):
    api.send(body)
def on_message(msg):
    net.get("http://93.184.216.34/page.html", got)
)";
  bc::FunctionManifest manifest;
  manifest.name = "fetcher";
  manifest.required = {bento::sandbox::Syscall::NetConnect};
  manifest.resources.memory_bytes = 8 << 20;
  manifest.resources.cpu_instructions = 10'000'000;
  manifest.resources.disk_bytes = 1 << 20;
  manifest.resources.network_bytes = 32 << 20;

  auto s = establish(world, client, exit_box, bc::kImagePython, source, "", {},
                     manifest);
  ASSERT_TRUE(s.tokens.has_value()) << s.error;
  s.conn->invoke(s.tokens->invocation.bytes(), {});
  world.run();
  ASSERT_EQ(s.outputs.size(), 1u);
  EXPECT_EQ(bu::to_string(s.outputs[0]), "web:/page.html");
}

TEST(BentoE2E, NonExitBoxFunctionsHaveNoDirectNetwork) {
  // Paper §5.3: a non-exit relay's functions are limited to Tor circuits.
  bc::BentoWorld world;
  world.start();
  world.bed().add_web_server(bt::parse_addr("93.184.216.34"),
                             [](const std::string&) { return bu::to_bytes("x"); });
  auto client = world.make_client("alice");
  std::string guard_box;
  for (const auto& relay : world.bed().consensus().relays) {
    if (relay.flags.guard) guard_box = relay.fingerprint();
  }
  const std::string source = R"(
def got(body):
    api.send("got")
def on_message(msg):
    net.get("http://93.184.216.34/", got)
)";
  bc::FunctionManifest manifest;
  manifest.name = "fetcher";
  manifest.required = {bento::sandbox::Syscall::NetConnect};
  manifest.resources.memory_bytes = 8 << 20;
  manifest.resources.cpu_instructions = 10'000'000;
  manifest.resources.disk_bytes = 1 << 20;
  manifest.resources.network_bytes = 32 << 20;
  auto s = establish(world, client, guard_box, bc::kImagePython, source, "", {},
                     manifest);
  ASSERT_TRUE(s.tokens.has_value()) << s.error;
  bc::BentoServer* server = world.server_for(guard_box);

  s.conn->invoke(s.tokens->invocation.bytes(), {});
  world.run();
  EXPECT_TRUE(s.outputs.empty());
  EXPECT_EQ(server->counters().deaths, 1u);  // netfilter denial kills it
}

TEST(BentoE2E, ComposedFunctionDeploysDropboxElsewhere) {
  // Figure 2: a function on box A deploys a second function on box B and
  // pushes data to it.
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());

  const std::string composer = R"(
store_src = "state = {}\ndef on_message(msg):\n    state['data'] = msg\n    api.send('stored ' + str(len(msg)))\n"

def deployed(token):
    if token == None:
        api.send("deploy failed")
    else:
        bento.invoke(target, token, "payload-from-composer", relay_output)

def relay_output(out):
    api.send(out)

def on_install(args):
    pass

def on_message(msg):
    target = str(msg)
    globals_set(target)
    bento.deploy(target, "store", store_src, ["spawn_function"], "", deployed)

def globals_set(t):
    state["target"] = t

state = {}
)";
  // Simpler composer: avoid the globals dance above by rewriting source.
  const std::string composer2 = R"(
state = {"target": ""}
store_src = "def on_message(msg):\n    api.send('stored ' + str(len(msg)))\n"

def relay_output(out):
    api.send(out)

def deployed(token):
    if token == None:
        api.send("deploy failed")
    else:
        bento.invoke(state["target"], token, "payload-from-composer", relay_output)

def on_message(msg):
    state["target"] = str(msg)
    bento.deploy(state["target"], "store", store_src, [], "", deployed)
)";
  (void)composer;

  bc::FunctionManifest manifest;
  manifest.name = "composer";
  manifest.required = {bento::sandbox::Syscall::SpawnFunction};
  manifest.resources.memory_bytes = 8 << 20;
  manifest.resources.cpu_instructions = 20'000'000;
  manifest.resources.disk_bytes = 1 << 20;
  manifest.resources.network_bytes = 32 << 20;

  auto s = establish(world, client, boxes[0], bc::kImagePython, composer2, "", {},
                     manifest);
  ASSERT_TRUE(s.tokens.has_value()) << s.error;

  s.conn->invoke(s.tokens->invocation.bytes(), bu::to_bytes(boxes[2]));
  world.run();
  ASSERT_EQ(s.outputs.size(), 1u);
  EXPECT_EQ(bu::to_string(s.outputs[0]), "stored 21");
  // The second box really runs a container now.
  EXPECT_EQ(world.server_for(boxes[2])->live_containers(), 1u);
}
