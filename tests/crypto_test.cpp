#include <gtest/gtest.h>

#include "crypto/aead.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/dh.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sign.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace bc = bento::crypto;
namespace bu = bento::util;

namespace {
std::string hex_digest(const bc::Digest& d) {
  return bu::to_hex(bu::ByteView(d.data(), d.size()));
}
}  // namespace

// ---- SHA-256: NIST / well-known vectors ----

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_digest(bc::sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_digest(bc::sha256(bu::to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_digest(bc::sha256(bu::to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  bc::Sha256 h;
  bu::Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_digest(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  bu::Rng rng(3);
  bu::Bytes data = rng.bytes(10000);
  // Feed in awkward chunk sizes crossing block boundaries.
  bc::Sha256 h;
  std::size_t off = 0;
  std::size_t sizes[] = {1, 63, 64, 65, 127, 128, 500};
  std::size_t i = 0;
  while (off < data.size()) {
    std::size_t n = std::min(sizes[i++ % 7], data.size() - off);
    h.update(bu::ByteView(data.data() + off, n));
    off += n;
  }
  EXPECT_EQ(h.finish(), bc::sha256(data));
}

TEST(Sha256, LengthBoundaryCases) {
  // Lengths around the 55/56/64 padding boundaries must not crash and must
  // be distinct.
  std::set<std::string> seen;
  for (std::size_t n : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    bu::Bytes b(n, 0x41);
    seen.insert(hex_digest(bc::sha256(b)));
  }
  EXPECT_EQ(seen.size(), 10u);
}

// ---- HMAC-SHA256: RFC 4231 vectors ----

TEST(Hmac, Rfc4231Case1) {
  bu::Bytes key(20, 0x0b);
  EXPECT_EQ(hex_digest(bc::hmac_sha256(key, bu::to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(hex_digest(bc::hmac_sha256(bu::to_bytes("Jefe"),
                                       bu::to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  bu::Bytes key(20, 0xaa);
  bu::Bytes msg(50, 0xdd);
  EXPECT_EQ(hex_digest(bc::hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashed) {
  bu::Bytes key(131, 0xaa);
  EXPECT_EQ(hex_digest(bc::hmac_sha256(
                key, bu::to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// ---- HKDF: RFC 5869 test case 1 ----

TEST(Hkdf, Rfc5869Case1) {
  bu::Bytes ikm(22, 0x0b);
  bu::Bytes salt = bu::from_hex("000102030405060708090a0b0c");
  bu::Bytes info = bu::from_hex("f0f1f2f3f4f5f6f7f8f9");
  bc::Digest prk = bc::hkdf_extract(salt, ikm);
  EXPECT_EQ(hex_digest(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  bu::Bytes okm = bc::hkdf_expand(prk, info, 42);
  EXPECT_EQ(bu::to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, DistinctLabelsGiveDistinctKeys) {
  bu::Bytes ikm = bu::to_bytes("input key material");
  auto a = bc::hkdf(ikm, {}, "label-a", 32);
  auto b = bc::hkdf(ikm, {}, "label-b", 32);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.size(), 32u);
}

// ---- ChaCha20: RFC 8439 §2.4.2 ----

TEST(ChaCha20, Rfc8439Vector) {
  bc::ChaChaKey key{};
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  bc::ChaChaNonce nonce{};  // RFC 8439 §2.4.2: 00..00 4a 00 00 00 00
  nonce[7] = 0x4a;
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  bu::Bytes ct = bc::chacha20_xor(key, nonce, 1, bu::to_bytes(plaintext));
  EXPECT_EQ(bu::to_hex(bu::ByteView(ct.data(), 16)), "6e2e359a2568f98041ba0728dd0d6981");
  EXPECT_EQ(bu::to_hex(bu::ByteView(ct.data() + 112, 2)), "874d");
  // Round-trip.
  bu::Bytes pt = bc::chacha20_xor(key, nonce, 1, ct);
  EXPECT_EQ(bu::to_string(pt), plaintext);
}

TEST(ChaCha20, StreamingMatchesOneShot) {
  bc::ChaChaKey key{};
  key[0] = 7;
  bc::ChaChaNonce nonce{};
  bu::Rng rng(4);
  bu::Bytes data = rng.bytes(1000);

  bu::Bytes oneshot = bc::chacha20_xor(key, nonce, 0, data);

  bc::ChaCha20 c(key, nonce, 0);
  bu::Bytes streamed;
  std::size_t off = 0;
  while (off < data.size()) {
    std::size_t n = std::min<std::size_t>(77, data.size() - off);
    bu::Bytes chunk(data.begin() + static_cast<std::ptrdiff_t>(off),
                    data.begin() + static_cast<std::ptrdiff_t>(off + n));
    c.process(chunk);
    bu::append(streamed, chunk);
    off += n;
  }
  EXPECT_EQ(streamed, oneshot);
}

TEST(ChaCha20, PipePairDecrypts) {
  bc::ChaChaKey key{};
  key[31] = 1;
  bc::ChaChaNonce nonce{};
  bc::ChaCha20 enc(key, nonce), dec(key, nonce);
  for (int i = 0; i < 20; ++i) {
    bu::Bytes msg = bu::to_bytes("cell payload " + std::to_string(i));
    bu::Bytes ct = enc.transform(msg);
    EXPECT_NE(ct, msg);
    EXPECT_EQ(dec.transform(ct), msg);
  }
}

// RFC 8439 §2.3.2: key 00..1f, nonce 00 00 00 09 00 00 00 4a 00 00 00 00,
// counter 1 — the serialized keystream block. XOR-ing zeros recovers the
// raw keystream, so this checks the kernel (not just a round trip).
TEST(ChaCha20, Rfc8439KeystreamBlock) {
  bc::ChaChaKey key{};
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  bc::ChaChaNonce nonce{};
  nonce[3] = 0x09;
  nonce[7] = 0x4a;
  bu::Bytes zeros(64, 0);
  bc::chacha20_xor_inplace(key, nonce, 1, zeros);
  EXPECT_EQ(bu::to_hex(zeros),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

// RFC 8439 A.1 test vector #1: all-zero key and nonce, counter 0.
TEST(ChaCha20, Rfc8439ZeroKeyKeystream) {
  bu::Bytes zeros(64, 0);
  bc::chacha20_xor_inplace(bc::ChaChaKey{}, bc::ChaChaNonce{}, 0, zeros);
  EXPECT_EQ(bu::to_hex(zeros),
            "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7"
            "da41597c5157488d7724e03fb8d84a376a43b8f41518a11cc387b669b2ee6586");
}

// RFC 8439 §2.4.2: the full 114-byte sunscreen ciphertext, not just a
// prefix — catches any lane-ordering bug in the multi-block kernel.
TEST(ChaCha20, Rfc8439FullCiphertext) {
  bc::ChaChaKey key{};
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  bc::ChaChaNonce nonce{};
  nonce[7] = 0x4a;
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  bu::Bytes ct = bu::to_bytes(plaintext);
  bc::chacha20_xor_inplace(key, nonce, 1, ct);
  EXPECT_EQ(bu::to_hex(ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

// The kernel generates keystream several blocks at a time; consuming it in
// odd-sized pieces that straddle both the 64-byte block boundary and the
// multi-block refill boundary must match one-shot output exactly.
TEST(ChaCha20, SplitsAcrossBlockAndRefillBoundaries) {
  bc::ChaChaKey key{};
  key[5] = 0xab;
  bc::ChaChaNonce nonce{};
  bu::Rng rng(99);
  bu::Bytes data = rng.bytes(3000);

  bu::Bytes oneshot = bc::chacha20_xor(key, nonce, 0, data);

  const std::size_t splits[] = {1, 63, 64, 65, 1, 127, 509, 511, 512, 513, 3, 256};
  bc::ChaCha20 c(key, nonce, 0);
  bu::Bytes pieced = data;
  std::size_t off = 0;
  std::size_t si = 0;
  while (off < pieced.size()) {
    const std::size_t n = std::min(splits[si++ % 12], pieced.size() - off);
    c.process(std::span<std::uint8_t>(pieced.data() + off, n));
    off += n;
  }
  EXPECT_EQ(pieced, oneshot);
}

TEST(ChaCha20, InPlaceMatchesTransform) {
  bc::ChaChaKey key{};
  key[0] = 1;
  bc::ChaChaNonce nonce{};
  bu::Rng rng(7);
  bu::Bytes data = rng.bytes(509);
  bc::ChaCha20 a(key, nonce), b(key, nonce);
  bu::Bytes copy = data;
  a.process(copy);
  EXPECT_EQ(copy, b.transform(data));
}

// ---- SHA-256: peek_digest ----

TEST(Sha256, PeekDigestMatchesFinish) {
  bu::Rng rng(21);
  // Cover padding both with and without an extra compression block.
  for (std::size_t len : {0u, 1u, 54u, 55u, 56u, 63u, 64u, 65u, 127u, 128u, 509u}) {
    bu::Bytes data = rng.bytes(len);
    bc::Sha256 h;
    h.update(data);
    EXPECT_EQ(h.peek_digest(), bc::sha256(data)) << len;
  }
}

TEST(Sha256, PeekDigestDoesNotDisturbState) {
  bc::Sha256 h;
  h.update(bu::to_bytes("abc"));
  const bc::Digest first = h.peek_digest();
  EXPECT_EQ(h.peek_digest(), first);  // idempotent
  h.update(bu::to_bytes("def"));
  EXPECT_EQ(h.peek_digest(), bc::sha256(bu::to_bytes("abcdef")));
}

// ---- AEAD ----

TEST(Aead, SealOpenRoundTrip) {
  bu::Rng rng(10);
  auto key = bc::AeadKey::from_bytes(rng.bytes(bc::kAeadKeyLen));
  auto nonce = bc::nonce_from_counter(1);
  bu::Bytes aad = bu::to_bytes("header");
  bu::Bytes pt = bu::to_bytes("attack at dawn");
  bu::Bytes sealed = bc::aead_seal(key, nonce, aad, pt);
  EXPECT_EQ(sealed.size(), pt.size() + bc::kAeadTagLen);
  auto opened = bc::aead_open(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

TEST(Aead, TamperedCiphertextFails) {
  bu::Rng rng(11);
  auto key = bc::AeadKey::from_bytes(rng.bytes(bc::kAeadKeyLen));
  auto nonce = bc::nonce_from_counter(2);
  bu::Bytes sealed = bc::aead_seal(key, nonce, {}, bu::to_bytes("data"));
  sealed[0] ^= 1;
  EXPECT_FALSE(bc::aead_open(key, nonce, {}, sealed).has_value());
}

TEST(Aead, TamperedTagFails) {
  bu::Rng rng(12);
  auto key = bc::AeadKey::from_bytes(rng.bytes(bc::kAeadKeyLen));
  auto nonce = bc::nonce_from_counter(3);
  bu::Bytes sealed = bc::aead_seal(key, nonce, {}, bu::to_bytes("data"));
  sealed.back() ^= 1;
  EXPECT_FALSE(bc::aead_open(key, nonce, {}, sealed).has_value());
}

TEST(Aead, WrongAadFails) {
  bu::Rng rng(13);
  auto key = bc::AeadKey::from_bytes(rng.bytes(bc::kAeadKeyLen));
  auto nonce = bc::nonce_from_counter(4);
  bu::Bytes sealed = bc::aead_seal(key, nonce, bu::to_bytes("aad1"), bu::to_bytes("data"));
  EXPECT_FALSE(bc::aead_open(key, nonce, bu::to_bytes("aad2"), sealed).has_value());
}

TEST(Aead, WrongNonceFails) {
  bu::Rng rng(14);
  auto key = bc::AeadKey::from_bytes(rng.bytes(bc::kAeadKeyLen));
  bu::Bytes sealed = bc::aead_seal(key, bc::nonce_from_counter(5), {}, bu::to_bytes("data"));
  EXPECT_FALSE(bc::aead_open(key, bc::nonce_from_counter(6), {}, sealed).has_value());
}

TEST(Aead, TooShortInputFails) {
  bu::Rng rng(15);
  auto key = bc::AeadKey::from_bytes(rng.bytes(bc::kAeadKeyLen));
  bu::Bytes tiny(bc::kAeadTagLen - 1, 0);
  EXPECT_FALSE(bc::aead_open(key, bc::nonce_from_counter(0), {}, tiny).has_value());
}

TEST(Aead, EmptyPlaintextWorks) {
  bu::Rng rng(16);
  auto key = bc::AeadKey::from_bytes(rng.bytes(bc::kAeadKeyLen));
  auto nonce = bc::nonce_from_counter(7);
  bu::Bytes sealed = bc::aead_seal(key, nonce, bu::to_bytes("x"), {});
  auto opened = bc::aead_open(key, nonce, bu::to_bytes("x"), sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST(Aead, KeyFromBytesRejectsWrongSize) {
  EXPECT_THROW(bc::AeadKey::from_bytes(bu::Bytes(10)), std::invalid_argument);
}

// ---- DH ----

TEST(Dh, SharedSecretAgrees) {
  bu::Rng rng(20);
  auto a = bc::DhKeyPair::generate(rng);
  auto b = bc::DhKeyPair::generate(rng);
  EXPECT_EQ(bc::dh_shared(a, b.public_value), bc::dh_shared(b, a.public_value));
}

TEST(Dh, DistinctPairsDistinctSecrets) {
  bu::Rng rng(21);
  auto a = bc::DhKeyPair::generate(rng);
  auto b = bc::DhKeyPair::generate(rng);
  auto c = bc::DhKeyPair::generate(rng);
  EXPECT_NE(bc::dh_shared(a, b.public_value), bc::dh_shared(a, c.public_value));
}

TEST(Dh, RejectsDegeneratePublic) {
  bu::Rng rng(22);
  auto a = bc::DhKeyPair::generate(rng);
  EXPECT_THROW(bc::dh_shared(a, 0), std::invalid_argument);
  EXPECT_THROW(bc::dh_shared(a, 1), std::invalid_argument);
  EXPECT_THROW(bc::dh_shared(a, bc::group_prime()), std::invalid_argument);
}

TEST(Dh, GpBytesRoundTrip) {
  bu::Rng rng(23);
  for (int i = 0; i < 20; ++i) {
    bc::Gp v = (static_cast<bc::Gp>(rng.next_u64()) << 64 | rng.next_u64()) %
               bc::group_prime();
    EXPECT_EQ(bc::gp_from_bytes(bc::gp_to_bytes(v)), v);
  }
  EXPECT_THROW(bc::gp_from_bytes(bu::Bytes(5)), std::invalid_argument);
}

TEST(Dh, ModmulMatchesSmallCases) {
  EXPECT_EQ(bc::modmul(7, 9, 11), (7 * 9) % 11);
  EXPECT_EQ(bc::modpow(3, 4, 100), 81u);
  EXPECT_EQ(bc::modpow(2, 10, 1000), 24u);
  // Fermat: a^(p-1) = 1 mod p for prime p.
  const bc::Gp p = bc::group_prime();
  EXPECT_EQ(bc::modpow(12345, p - 1, p), 1u);
}

// ---- Schnorr signatures ----

TEST(Sign, ValidSignatureVerifies) {
  bu::Rng rng(30);
  auto key = bc::SigningKey::generate(rng);
  bu::Bytes msg = bu::to_bytes("consensus document v1");
  auto sig = key.sign(msg);
  EXPECT_TRUE(bc::verify(key.public_key(), msg, sig));
}

TEST(Sign, WrongMessageFails) {
  bu::Rng rng(31);
  auto key = bc::SigningKey::generate(rng);
  auto sig = key.sign(bu::to_bytes("message A"));
  EXPECT_FALSE(bc::verify(key.public_key(), bu::to_bytes("message B"), sig));
}

TEST(Sign, WrongKeyFails) {
  bu::Rng rng(32);
  auto key1 = bc::SigningKey::generate(rng);
  auto key2 = bc::SigningKey::generate(rng);
  bu::Bytes msg = bu::to_bytes("msg");
  EXPECT_FALSE(bc::verify(key2.public_key(), msg, key1.sign(msg)));
}

TEST(Sign, TamperedSignatureFails) {
  bu::Rng rng(33);
  auto key = bc::SigningKey::generate(rng);
  bu::Bytes msg = bu::to_bytes("msg");
  auto sig = key.sign(msg);
  auto bad = sig;
  bad.s ^= 1;
  EXPECT_FALSE(bc::verify(key.public_key(), msg, bad));
  bad = sig;
  bad.r ^= 1;
  EXPECT_FALSE(bc::verify(key.public_key(), msg, bad));
}

TEST(Sign, SignatureSerializationRoundTrip) {
  bu::Rng rng(34);
  auto key = bc::SigningKey::generate(rng);
  auto sig = key.sign(bu::to_bytes("hello"));
  auto round = bc::Signature::from_bytes(sig.to_bytes());
  EXPECT_EQ(round.r, sig.r);
  EXPECT_EQ(round.s, sig.s);
  EXPECT_TRUE(bc::verify(key.public_key(), bu::to_bytes("hello"), round));
}

TEST(Sign, DeterministicNonce) {
  bu::Rng rng(35);
  auto key = bc::SigningKey::generate(rng);
  auto s1 = key.sign(bu::to_bytes("m"));
  auto s2 = key.sign(bu::to_bytes("m"));
  EXPECT_EQ(s1.r, s2.r);
  EXPECT_EQ(s1.s, s2.s);
}

TEST(Sign, FingerprintStableAndShort) {
  bu::Rng rng(36);
  auto key = bc::SigningKey::generate(rng);
  auto fp = bc::key_fingerprint(key.public_key());
  EXPECT_EQ(fp.size(), 16u);
  EXPECT_EQ(fp, bc::key_fingerprint(key.public_key()));
}

// Property sweep: sign/verify across many keys and messages.
class SignSweep : public ::testing::TestWithParam<int> {};

TEST_P(SignSweep, RoundTrip) {
  bu::Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  auto key = bc::SigningKey::generate(rng);
  bu::Bytes msg = rng.bytes(static_cast<std::size_t>(GetParam()) * 13 + 1);
  auto sig = key.sign(msg);
  EXPECT_TRUE(bc::verify(key.public_key(), msg, sig));
  msg[0] ^= 0xff;
  EXPECT_FALSE(bc::verify(key.public_key(), msg, sig));
}

INSTANTIATE_TEST_SUITE_P(Keys, SignSweep, ::testing::Range(0, 10));

// ---- Poly1305 / ChaCha20-Poly1305: RFC 8439 vectors ----

#include "crypto/poly1305.hpp"

TEST(Poly1305, Rfc8439MacVector) {
  // RFC 8439 §2.5.2.
  bc::Poly1305Key key{};
  auto key_bytes = bu::from_hex(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  std::copy(key_bytes.begin(), key_bytes.end(), key.begin());
  auto tag = bc::poly1305(key, bu::to_bytes("Cryptographic Forum Research Group"));
  EXPECT_EQ(bu::to_hex(bu::ByteView(tag.data(), tag.size())),
            "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305, Rfc8439AeadVector) {
  // RFC 8439 §2.8.2.
  bc::ChaChaKey key{};
  auto key_bytes = bu::from_hex(
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  std::copy(key_bytes.begin(), key_bytes.end(), key.begin());
  bc::ChaChaNonce nonce{};
  auto nonce_bytes = bu::from_hex("070000004041424344454647");
  std::copy(nonce_bytes.begin(), nonce_bytes.end(), nonce.begin());
  const bu::Bytes aad = bu::from_hex("50515253c0c1c2c3c4c5c6c7");
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";

  bu::Bytes sealed = bc::chapoly_seal(key, nonce, aad, bu::to_bytes(plaintext));
  ASSERT_EQ(sealed.size(), plaintext.size() + 16);
  EXPECT_EQ(bu::to_hex(bu::ByteView(sealed.data(), 16)),
            "d31a8d34648e60db7b86afbc53ef7ec2");
  EXPECT_EQ(bu::to_hex(bu::ByteView(sealed.data() + sealed.size() - 16, 16)),
            "1ae10b594f09e26a7e902ecbd0600691");

  auto opened = bc::chapoly_open(key, nonce, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(bu::to_string(*opened), plaintext);
}

TEST(Poly1305, ChapolyRejectsTampering) {
  bu::Rng rng(40);
  bc::ChaChaKey key{};
  auto kb = rng.bytes(32);
  std::copy(kb.begin(), kb.end(), key.begin());
  auto nonce = bc::nonce_from_counter(9);
  bu::Bytes sealed = bc::chapoly_seal(key, nonce, bu::to_bytes("aad"),
                                      bu::to_bytes("secret"));
  auto bad = sealed;
  bad[0] ^= 1;
  EXPECT_FALSE(bc::chapoly_open(key, nonce, bu::to_bytes("aad"), bad).has_value());
  bad = sealed;
  bad.back() ^= 1;
  EXPECT_FALSE(bc::chapoly_open(key, nonce, bu::to_bytes("aad"), bad).has_value());
  EXPECT_FALSE(bc::chapoly_open(key, nonce, bu::to_bytes("axd"), sealed).has_value());
  EXPECT_FALSE(bc::chapoly_open(key, bc::nonce_from_counter(8), bu::to_bytes("aad"),
                                sealed)
                   .has_value());
  EXPECT_FALSE(bc::chapoly_open(key, nonce, bu::to_bytes("aad"), bu::Bytes(10))
                   .has_value());
}

TEST(Poly1305, EmptyAndBlockBoundaryMessages) {
  bu::Rng rng(41);
  bc::Poly1305Key key{};
  auto kb = rng.bytes(32);
  std::copy(kb.begin(), kb.end(), key.begin());
  std::set<std::string> tags;
  for (std::size_t n : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 33u, 100u}) {
    auto tag = bc::poly1305(key, bu::Bytes(n, 0x61));
    tags.insert(bu::to_hex(bu::ByteView(tag.data(), tag.size())));
  }
  EXPECT_EQ(tags.size(), 9u);  // all distinct
}
