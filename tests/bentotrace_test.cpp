// bentotrace reader + end-to-end span pipeline tests: JSONL parsing, forest
// reconstruction (orphans, wraparound stubs), byte-identical span trees for
// fixed-seed runs, per-stage coverage of a full conclave deployment (client,
// relay hops, conclave dispatch, attestation), Stem-firewall mediation spans
// via the LoadBalancer native, and orphan reporting when a circuit dies
// mid-request.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "bentotrace/reader.hpp"
#include "core/world.hpp"
#include "functions/loadbalancer.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace bc = bento::core;
namespace bf = bento::functions;
namespace bo = bento::obs;
namespace bt = bento::tools;
namespace bu = bento::util;

TEST(BentotraceReader, ParsesExporterLines) {
  auto ev = bt::parse_jsonl_line(
      R"({"ts":1234,"ev":"span.begin","a":7,"b":12884901890,"ok":1})");
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->ts, 1234);
  EXPECT_EQ(ev->ev, "span.begin");
  EXPECT_EQ(ev->a, 7u);
  EXPECT_EQ(ev->b, 12884901890ull);
  EXPECT_TRUE(ev->ok);

  auto failed = bt::parse_jsonl_line(
      R"({"ts":-1,"ev":"span.end","a":1,"b":4,"ok":0})");
  ASSERT_TRUE(failed.has_value());
  EXPECT_EQ(failed->ts, -1);
  EXPECT_FALSE(failed->ok);

  EXPECT_FALSE(bt::parse_jsonl_line("").has_value());
  EXPECT_FALSE(bt::parse_jsonl_line("not json").has_value());
  EXPECT_FALSE(bt::parse_jsonl_line(R"({"ts":1,"ev":"x","a":2})").has_value());
  EXPECT_FALSE(
      bt::parse_jsonl_line(R"({"ts":1,"ev":"x","a":2,"b":3,"ok":1} trailing)")
          .has_value());
}

namespace {

bt::RawEvent raw(std::int64_t ts, const char* ev, std::uint32_t a,
                 std::uint64_t b, bool ok = true) {
  bt::RawEvent e;
  e.ts = ts;
  e.ev = ev;
  e.a = a;
  e.b = b;
  e.ok = ok;
  return e;
}

std::uint64_t begin_b(std::uint32_t parent, bo::Stage stage) {
  return (static_cast<std::uint64_t>(parent) << 32) |
         static_cast<std::uint64_t>(stage);
}

}  // namespace

TEST(BentotraceReader, BuildsForestWithParentLinks) {
  std::vector<bt::RawEvent> events = {
      raw(0, "span.begin", 1, begin_b(0, bo::Stage::ClientInvoke)),
      raw(5, "span.begin", 2, begin_b(1, bo::Stage::NetLink)),
      raw(5, "span.note", 2,
          (static_cast<std::uint64_t>(bo::kNoteWireBytes) << 32) | 581),
      raw(45, "span.end", 2, static_cast<std::uint64_t>(bo::Stage::NetLink)),
      raw(90, "span.end", 1,
          static_cast<std::uint64_t>(bo::Stage::ClientInvoke)),
  };
  const bt::TraceForest forest = bt::build_forest(events);
  ASSERT_EQ(forest.spans.size(), 2u);
  ASSERT_EQ(forest.roots.size(), 1u);
  EXPECT_TRUE(forest.orphan_ends.empty());
  EXPECT_TRUE(forest.unfinished.empty());
  const bt::SpanNode& root = forest.spans.at(1);
  EXPECT_EQ(root.stage, bo::Stage::ClientInvoke);
  EXPECT_EQ(root.duration_us(), 90);
  ASSERT_EQ(root.children.size(), 1u);
  const bt::SpanNode& link = forest.spans.at(2);
  EXPECT_EQ(link.parent, 1u);
  EXPECT_EQ(link.wire_bytes, 581u);
  EXPECT_EQ(link.duration_us(), 40);
}

TEST(BentotraceReader, OrphanEndAndUnfinishedSpanAreReported) {
  std::vector<bt::RawEvent> events = {
      // End whose begin was overwritten by ring wraparound: stage comes
      // from the end event itself.
      raw(100, "span.end", 9, static_cast<std::uint64_t>(bo::Stage::NetLink)),
      // Begin that never ends (request still in flight at export).
      raw(200, "span.begin", 10, begin_b(0, bo::Stage::ClientInvoke)),
      // Child whose parent is entirely lost: promoted to a root.
      raw(300, "span.begin", 11, begin_b(4, bo::Stage::RelayForward)),
      raw(310, "span.end", 11,
          static_cast<std::uint64_t>(bo::Stage::RelayForward)),
  };
  const bt::TraceForest forest = bt::build_forest(events);
  ASSERT_EQ(forest.orphan_ends.size(), 1u);
  EXPECT_EQ(forest.spans.at(9).stage, bo::Stage::NetLink);
  EXPECT_FALSE(forest.spans.at(9).complete());
  ASSERT_EQ(forest.unfinished.size(), 1u);
  EXPECT_EQ(forest.unfinished[0], 10u);
  // Lost-parent child is a root, and nothing crashes formatting any of it.
  EXPECT_EQ(forest.roots.size(), 3u);
  std::ostringstream os;
  bt::format_tree(forest, os);
  EXPECT_NE(os.str().find("orphan ends"), std::string::npos);
  EXPECT_NE(os.str().find("unfinished spans"), std::string::npos);
  std::ostringstream summary;
  bt::format_stage_summary(forest, summary);
  EXPECT_NE(summary.str().find("relay.forward"), std::string::npos);
}

namespace {

constexpr char kEchoSource[] = R"(
state = {"n": 0}

def on_message(msg):
    state["n"] += 1
    api.send("echo " + str(state["n"]))
)";

struct ScenarioResult {
  std::string jsonl;
  std::string tree;
  bt::TraceForest forest;
};

// Fixed-seed conclave deployment: connect, SGX spawn, upload, two invokes,
// shutdown. Returns the JSONL export plus the reconstructed forest.
ScenarioResult run_conclave_scenario() {
  ScenarioResult result;
  bo::recorder().enable(std::size_t{1} << 16);
  {
    bc::BentoWorldOptions options;
    options.testbed.guards = 2;
    options.testbed.middles = 2;
    options.testbed.exits = 2;
    bc::BentoWorld world(options);
    world.start();

    auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
    auto client = world.make_client("alice");
    std::shared_ptr<bc::BentoConnection> conn;
    client.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> c) {
      conn = std::move(c);
    });
    world.run();
    EXPECT_NE(conn, nullptr);
    if (conn != nullptr) {
      bool ready = false;
      conn->spawn(bc::kImagePythonOpSgx,
                  [&](bool ok, std::string) { ready = ok; });
      world.run();
      EXPECT_TRUE(ready);

      bc::FunctionManifest manifest;
      manifest.name = "echo";
      manifest.image = bc::kImagePythonOpSgx;
      manifest.resources.memory_bytes = 8 << 20;
      manifest.resources.cpu_instructions = 1'000'000;
      manifest.resources.disk_bytes = 1 << 20;
      manifest.resources.network_bytes = 1 << 20;
      std::optional<bc::TokenPair> tokens;
      conn->upload(manifest, kEchoSource, "", {},
                   [&](std::optional<bc::TokenPair> t, std::string) {
                     tokens = std::move(t);
                   });
      world.run();
      EXPECT_TRUE(tokens.has_value());
      if (tokens.has_value()) {
        for (int i = 0; i < 2; ++i) {
          conn->invoke(tokens->invocation.bytes(), bu::to_bytes("ping"));
          world.run();
        }
        bool closed = false;
        conn->shutdown(tokens->shutdown.bytes(), [&](bool ok) { closed = ok; });
        world.run();
        EXPECT_TRUE(closed);
      }
    }
    std::ostringstream os;
    bo::recorder().export_jsonl(os);
    result.jsonl = os.str();
  }
  bo::recorder().disable();

  std::istringstream in(result.jsonl);
  result.forest = bt::build_forest(bt::read_jsonl(in));
  std::ostringstream tree;
  bt::format_tree(result.forest, tree);
  result.tree = tree.str();
  return result;
}

std::set<std::string> stages_seen(const bt::TraceForest& forest) {
  std::set<std::string> seen;
  for (const auto& [id, node] : forest.spans) {
    seen.insert(bo::stage_name(node.stage));
  }
  return seen;
}

}  // namespace

TEST(BentotraceE2E, SpanTreesByteIdenticalAcrossFixedSeedRuns) {
  const ScenarioResult first = run_conclave_scenario();
  const ScenarioResult second = run_conclave_scenario();
  ASSERT_FALSE(first.tree.empty());
  EXPECT_EQ(first.jsonl, second.jsonl);
  EXPECT_EQ(first.tree, second.tree);
}

TEST(BentotraceE2E, BreakdownCoversEveryPipelineStage) {
  const ScenarioResult result = run_conclave_scenario();
  const std::set<std::string> seen = stages_seen(result.forest);
  // Client-side request origins.
  EXPECT_TRUE(seen.count("client.connect"));
  EXPECT_TRUE(seen.count("client.spawn"));
  EXPECT_TRUE(seen.count("client.upload"));
  EXPECT_TRUE(seen.count("client.invoke"));
  EXPECT_TRUE(seen.count("client.shutdown"));
  // Transit: every hop shows up as link + relay spans.
  EXPECT_TRUE(seen.count("net.link"));
  EXPECT_TRUE(seen.count("relay.forward"));
  // Box side: message handling, conclave dispatch, sandboxed execution,
  // spawn-time attestation.
  EXPECT_TRUE(seen.count("server.handle"));
  EXPECT_TRUE(seen.count("fn.dispatch"));
  EXPECT_TRUE(seen.count("fn.execute"));
  EXPECT_TRUE(seen.count("attest"));

  // The conclave ecall transition has its modeled cost attributed: every
  // complete fn.dispatch span lasts exactly the ecall overhead (60 us).
  std::size_t dispatches = 0;
  for (const auto& [id, node] : result.forest.spans) {
    if (node.stage != bo::Stage::FnDispatch || !node.complete()) continue;
    ++dispatches;
    EXPECT_EQ(node.duration_us(), 60);
  }
  EXPECT_GT(dispatches, 0u);

  // Stage summary renders every seen stage.
  std::ostringstream os;
  bt::format_stage_summary(result.forest, os);
  for (const std::string& name : seen) {
    EXPECT_NE(os.str().find(name), std::string::npos) << name;
  }
}

TEST(BentotraceE2E, StemMediationSpansAppearForHiddenServiceFunctions) {
  // The hidden-service machinery emits far more cell/sim events than the
  // ring holds; keep only span kinds so the request tree survives the flood
  // (the production pattern for tracing on a busy relay).
  bo::recorder().enable(std::size_t{1} << 16);
  bo::recorder().set_mask(bo::Recorder::mask_of(bo::Ev::SpanBegin) |
                          bo::Recorder::mask_of(bo::Ev::SpanEnd) |
                          bo::Recorder::mask_of(bo::Ev::SpanNote));
  std::string jsonl;
  {
    bc::BentoWorldOptions options;
    options.testbed.guards = 3;
    options.testbed.middles = 6;
    options.testbed.exits = 2;
    options.testbed.relay_bandwidth = 4e6;
    bc::BentoWorld world(options);
    bf::register_loadbalancer(world.natives());
    world.start();

    auto client = world.make_client("operator");
    auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
    ASSERT_GE(boxes.size(), 4u);

    std::shared_ptr<bc::BentoConnection> conn;
    client.bento->connect(boxes[1], [&](std::shared_ptr<bc::BentoConnection> c) {
      conn = std::move(c);
    });
    world.run();
    ASSERT_NE(conn, nullptr);
    bool ready = false;
    conn->spawn(bf::loadbalancer_manifest().image,
                [&](bool ok, std::string) { ready = ok; });
    world.run();
    ASSERT_TRUE(ready);

    bf::LoadBalancerConfig config;
    config.intro_points = 2;
    config.content_bytes = 10'000;
    config.replica_boxes = {boxes[2], boxes[3]};
    std::optional<bc::TokenPair> tokens;
    conn->upload(bf::loadbalancer_manifest(), "", "loadbalancer",
                 config.serialize(),
                 [&](std::optional<bc::TokenPair> t, std::string) {
                   tokens = std::move(t);
                 });
    world.run();
    ASSERT_TRUE(tokens.has_value());

    std::ostringstream os;
    bo::recorder().export_jsonl(os);
    jsonl = os.str();
  }
  bo::recorder().disable();
  bo::recorder().set_mask(bo::Recorder::mask_all());

  std::istringstream in(jsonl);
  const bt::TraceForest forest = bt::build_forest(bt::read_jsonl(in));
  std::size_t mediations = 0;
  for (const auto& [id, node] : forest.spans) {
    if (node.stage != bo::Stage::StemMediate) continue;
    ++mediations;
    // Mediation always happens on behalf of a traced request, never as a
    // root of its own.
    EXPECT_NE(node.parent, 0u);
  }
  EXPECT_GT(mediations, 0u);
}

TEST(BentotraceE2E, MidRequestTeardownLeavesReportedOrphanSpan) {
  bo::recorder().enable(std::size_t{1} << 16);
  std::string jsonl;
  {
    bc::BentoWorldOptions options;
    options.testbed.guards = 2;
    options.testbed.middles = 2;
    options.testbed.exits = 2;
    bc::BentoWorld world(options);
    world.start();

    auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
    auto client = world.make_client("alice");
    std::shared_ptr<bc::BentoConnection> conn;
    client.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> c) {
      conn = std::move(c);
    });
    world.run();
    ASSERT_NE(conn, nullptr);
    bool ready = false;
    conn->spawn(bc::kImagePythonOpSgx,
                [&](bool ok, std::string) { ready = ok; });
    world.run();
    ASSERT_TRUE(ready);
    bc::FunctionManifest manifest;
    manifest.name = "echo";
    manifest.image = bc::kImagePythonOpSgx;
    manifest.resources.memory_bytes = 8 << 20;
    manifest.resources.cpu_instructions = 1'000'000;
    manifest.resources.disk_bytes = 1 << 20;
    manifest.resources.network_bytes = 1 << 20;
    std::optional<bc::TokenPair> tokens;
    conn->upload(manifest, kEchoSource, "", {},
                 [&](std::optional<bc::TokenPair> t, std::string) {
                   tokens = std::move(t);
                 });
    world.run();
    ASSERT_TRUE(tokens.has_value());

    // Fire an invoke but kill the connection before the response can make
    // it back: the request's span must surface as an orphan, not vanish.
    conn->invoke(tokens->invocation.bytes(), bu::to_bytes("doomed"));
    world.run_for(bu::Duration::millis(10));
    conn->close();
    world.run();

    std::ostringstream os;
    bo::recorder().export_jsonl(os);
    jsonl = os.str();
  }
  bo::recorder().disable();

  std::istringstream in(jsonl);
  const bt::TraceForest forest = bt::build_forest(bt::read_jsonl(in));
  bool orphaned_invoke = false;
  for (const auto& [id, node] : forest.spans) {
    if (node.stage != bo::Stage::ClientInvoke) continue;
    // Either the teardown path closed it as a failure, or it never got an
    // end and is reported unfinished; both are visible orphans.
    if (!node.complete() || !node.ok) orphaned_invoke = true;
  }
  EXPECT_TRUE(orphaned_invoke);
  std::ostringstream tree;
  bt::format_tree(forest, tree);  // must not crash on the orphan
  EXPECT_FALSE(tree.str().empty());
}
