// Tier-1 chaos suite (DESIGN.md §9): deterministic fault injection and
// end-to-end recovery — seeded replay, circuit rebuild around crashed
// relays, LoadBalancer replica failover, Shard K-of-N reconstruction, and
// client retry exhaustion.
//
// Seed matrix: the scenarios read BENTO_CHAOS_SEED (default 42) so CI can
// sweep seeds; every assertion below holds for *any* seed — seed-specific
// behaviour is only ever compared against a rerun of the same seed. On
// failure, each test dumps its flight-recorder capture to
// $BENTO_CHAOS_ARTIFACT_DIR/<test>.jsonl for offline replay (EXPERIMENTS.md
// has the recipe).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "core/world.hpp"
#include "functions/loadbalancer.hpp"
#include "functions/shard.hpp"
#include "obs/trace.hpp"
#include "tor/hs.hpp"

namespace bc = bento::core;
namespace bch = bento::chaos;
namespace bf = bento::functions;
namespace bo = bento::obs;
namespace bt = bento::tor;
namespace bu = bento::util;

namespace {

std::uint64_t chaos_seed() {
  const char* s = std::getenv("BENTO_CHAOS_SEED");
  if (s == nullptr || *s == '\0') return 42;
  return std::strtoull(s, nullptr, 10);
}

/// Turns the flight recorder on for one test; on destruction writes the
/// capture to $BENTO_CHAOS_ARTIFACT_DIR/<name>.jsonl if the test failed,
/// then disables the recorder.
class RecorderScope {
 public:
  explicit RecorderScope(std::string name) : name_(std::move(name)) {
    bo::recorder().enable(1 << 15);
  }

  std::string jsonl() const {
    std::ostringstream os;
    bo::recorder().export_jsonl(os);
    return os.str();
  }

  ~RecorderScope() {
    const char* dir = std::getenv("BENTO_CHAOS_ARTIFACT_DIR");
    if (dir != nullptr && *dir != '\0' && ::testing::Test::HasFailure()) {
      std::ofstream out(std::string(dir) + "/" + name_ + ".jsonl");
      out << jsonl();
    }
    bo::recorder().disable();
  }

 private:
  std::string name_;
};

/// Crash both layers of a box when the chaos engine takes its node down:
/// the Tor router forgets every circuit and the Bento server loses its
/// containers (conclaves die with the machine).
void wire_box_crash(bch::ChaosEngine& engine, bc::BentoWorld& world,
                    const std::string& fingerprint) {
  bt::Router* router = world.bed().router_by_fingerprint(fingerprint);
  ASSERT_NE(router, nullptr);
  engine.set_node_handler(router->node(), [&world, fingerprint](bool up) {
    if (up) return;
    if (bc::BentoServer* server = world.server_for(fingerprint)) server->crash();
    world.bed().router_by_fingerprint(fingerprint)->crash();
  });
}

constexpr char kEchoSource[] = R"(
def on_message(msg):
    api.send("echo: " + str(msg))
)";

struct Deployed {
  std::shared_ptr<bc::BentoConnection> conn;
  std::optional<bc::TokenPair> tokens;
  std::string error;
  std::vector<bu::Bytes> outputs;
};

/// Connects, spawns, uploads. `settle` runs the world between steps —
/// pass world.run() normally, or a run_for() when recurring timers (LB
/// health checks) keep the event queue non-empty forever.
Deployed deploy_function(bc::BentoWorld& world, bc::BentoWorld::Client& client,
                         const std::string& box, const bc::FunctionManifest& manifest,
                         const std::string& source, const std::string& native = "",
                         bu::Bytes args = {},
                         const std::function<void()>& settle = {}) {
  const std::function<void()> run =
      settle ? settle : std::function<void()>([&world] { world.run(); });
  Deployed d;
  client.bento->connect(box, [&](std::shared_ptr<bc::BentoConnection> conn) {
    d.conn = std::move(conn);
  });
  run();
  if (d.conn == nullptr) {
    d.error = "connect failed";
    return d;
  }
  d.conn->set_output_handler([&d](bu::Bytes out) { d.outputs.push_back(std::move(out)); });
  bool ok = false;
  d.conn->spawn(manifest.image, [&](bool s, std::string err) {
    ok = s;
    if (!s) d.error = err;
  });
  run();
  if (!ok) return d;
  d.conn->upload(manifest, source, native, args,
                 [&](std::optional<bc::TokenPair> tokens, std::string err) {
                   d.tokens = std::move(tokens);
                   if (!err.empty()) d.error = err;
                 });
  run();
  return d;
}

bc::FunctionManifest echo_manifest() {
  bc::FunctionManifest manifest;
  manifest.name = "chaos-echo";
  manifest.image = bc::kImagePython;
  manifest.resources.memory_bytes = 8 << 20;
  manifest.resources.cpu_instructions = 10'000'000;
  manifest.resources.disk_bytes = 4 << 20;
  manifest.resources.network_bytes = 32 << 20;
  return manifest;
}

/// One full traced scenario under a busy fault plan; returns the
/// flight-recorder capture. Byte-identical across reruns of the same seed.
std::string traced_chaos_jsonl(std::uint64_t seed) {
  std::string out;
  bo::recorder().enable(1 << 15);
  {
    bc::BentoWorldOptions options;
    options.testbed.seed = seed;
    bc::BentoWorld world(options);
    world.start();
    bch::ChaosEngine engine(world.sim(), world.bed().net());
    wire_box_crash(engine, world, world.bed().router(5).fingerprint());

    bch::ChaosPlan plan;
    plan.seed = seed;
    // Mild everywhere-loss plus duplication and reordering jitter.
    plan.links.push_back({bch::kAnyNode, bch::kAnyNode, /*drop_p=*/0.02,
                          /*dup_p=*/0.01, /*jitter_p=*/0.05, bu::Duration::millis(15)});
    // Two middles lose sight of each other for a while.
    plan.partitions.push_back({world.bed().router(3).node(), world.bed().router(4).node(),
                               bu::Time::from_seconds(5), bu::Duration::seconds(3)});
    // One middle dies and comes back.
    plan.crashes.push_back({world.bed().router(5).node(), bu::Time::from_seconds(8),
                            bu::Duration::seconds(4)});
    // A guard's access link degrades.
    plan.throttles.push_back({world.bed().router(0).node(), /*scale=*/0.2,
                              bu::Time::from_seconds(2), bu::Duration::seconds(5)});
    // App-level fault: a hostile co-tenant thrashes box 0's EPC.
    plan.app_faults.push_back({bu::Time::from_seconds(6), /*ref=*/7,
                               [&world] { world.server(0).epc().thrash(32 << 20); }});
    engine.install(std::move(plan));

    auto client = world.make_client("alice");
    auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
    auto d = deploy_function(world, client, boxes.back(), echo_manifest(), kEchoSource);
    if (d.tokens.has_value()) {
      for (int i = 0; i < 2; ++i) {
        client.bento->invoke_reliable(boxes.back(), d.tokens->invocation.bytes(),
                                      bu::to_bytes("m" + std::to_string(i)),
                                      [](bool, bu::Bytes, int) {});
        world.run();
      }
    }
    std::ostringstream os;
    bo::recorder().export_jsonl(os);
    out = os.str();
  }
  bo::recorder().disable();
  return out;
}

}  // namespace

// A chaos run is a pure function of (seed, plan): the same seed replays a
// byte-identical flight-recorder capture, and a different seed does not.
TEST(Chaos, SeededDeterminism) {
  const std::uint64_t seed = chaos_seed();
  const std::string first = traced_chaos_jsonl(seed);
  const std::string second = traced_chaos_jsonl(seed);
  EXPECT_EQ(first, second) << "chaos run is not deterministic for seed " << seed;
  EXPECT_NE(first.find("\"ev\":\"chaos.fault\""), std::string::npos);

  const std::string other = traced_chaos_jsonl(seed + 1);
  EXPECT_NE(first, other) << "plan seed does not influence the fault sequence";
}

// A relay crash mid-deployment: the forced build through the dead relay
// fails with the hop attributed, the rebuild path kicks in, and a reliable
// invocation completes around the corpse.
TEST(Chaos, CircuitRebuildOnRelayCrash) {
  RecorderScope rec("CircuitRebuildOnRelayCrash");
  bc::BentoWorldOptions options;
  options.testbed.seed = chaos_seed();
  bc::BentoWorld world(options);
  world.start();
  bch::ChaosEngine engine(world.sim(), world.bed().net());
  engine.install({});

  auto client = world.make_client("alice");
  const auto& relays = world.bed().consensus().relays;
  // Target an exit-flagged box; victim is a flagless middle off the deploy
  // path; keep exactly one guard eligible so the forced path is unique.
  std::string box;
  for (const auto& r : relays) {
    if (r.flags.exit) box = r.fingerprint();
  }
  ASSERT_FALSE(box.empty());
  auto d = deploy_function(world, client, box, echo_manifest(), kEchoSource);
  ASSERT_TRUE(d.tokens.has_value()) << d.error;
  const auto deploy_path = d.conn->path_fingerprints();

  std::string victim, keep_guard;
  for (const auto& r : relays) {
    const std::string fp = r.fingerprint();
    const bool on_path =
        std::find(deploy_path.begin(), deploy_path.end(), fp) != deploy_path.end();
    if (victim.empty() && !r.flags.guard && !r.flags.exit && !on_path) victim = fp;
    if (keep_guard.empty() && r.flags.guard && fp != box) keep_guard = fp;
  }
  ASSERT_FALSE(victim.empty());
  ASSERT_FALSE(keep_guard.empty());

  wire_box_crash(engine, world, victim);
  engine.crash_now(world.bed().router_by_fingerprint(victim)->node());
  world.run();
  EXPECT_EQ(engine.stats().crashes, 1u);

  // Force the next build through the dead relay: exclude everything except
  // one guard, the victim, and the box. The build must time out, attribute
  // the victim, and the rebuild attempt (victim now excluded) has no
  // eligible middle left — connect fails cleanly.
  std::vector<std::string> excluded;
  for (const auto& r : relays) {
    const std::string fp = r.fingerprint();
    if (fp != keep_guard && fp != victim && fp != box) excluded.push_back(fp);
  }
  client.proxy->set_build_timeout(bu::Duration::seconds(2));
  bool forced_done = false;
  std::shared_ptr<bc::BentoConnection> forced;
  client.bento->connect(box, excluded, [&](std::shared_ptr<bc::BentoConnection> conn) {
    forced_done = true;
    forced = std::move(conn);
  });
  world.run();
  EXPECT_TRUE(forced_done);
  EXPECT_EQ(forced, nullptr);
  EXPECT_EQ(client.proxy->last_failed_hop(), victim);

  // Unconstrained reliable invocation routes around the dead relay and
  // reaches the container deployed before the crash.
  bool ok = false;
  int attempts = 0;
  bu::Bytes output;
  client.bento->invoke_reliable(box, d.tokens->invocation.bytes(), bu::to_bytes("ping"),
                                [&](bool o, bu::Bytes out, int a) {
                                  ok = o;
                                  output = std::move(out);
                                  attempts = a;
                                });
  world.run();
  EXPECT_TRUE(ok);
  EXPECT_GE(attempts, 1);
  EXPECT_EQ(bu::to_string(output), "echo: ping");

  const std::string jsonl = rec.jsonl();
  EXPECT_NE(jsonl.find("\"ev\":\"chaos.fault\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"ev\":\"circuit.rebuild\""), std::string::npos);
}

// The LoadBalancer health-checks remote replicas; when one's box dies the
// front end detects the missed pongs, declares it dead, and re-spawns the
// replica from the stored image on the next candidate box.
TEST(Chaos, LoadBalancerFailoverOnReplicaCrash) {
  RecorderScope rec("LoadBalancerFailoverOnReplicaCrash");
  bc::BentoWorldOptions options;
  options.testbed.seed = chaos_seed();
  options.testbed.guards = 3;
  options.testbed.middles = 6;
  options.testbed.exits = 2;
  options.testbed.relay_bandwidth = 4e6;
  bc::BentoWorld world(options);
  bf::register_loadbalancer(world.natives());
  world.start();
  bch::ChaosEngine engine(world.sim(), world.bed().net());
  engine.install({});

  auto operator_client = world.make_client("operator");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  ASSERT_GE(boxes.size(), 6u);

  bf::LoadBalancerConfig config;
  config.intro_points = 2;
  config.max_clients_per_replica = 1;
  config.content_bytes = 200'000;
  config.replica_boxes = {boxes[2], boxes[3]};
  config.idle_shutdown_seconds = 0;
  config.health_check_seconds = 2;
  config.health_max_misses = 2;

  // Health ticks recur forever, so settle with bounded run_for from the
  // install (upload) step onward.
  const std::string lb_box = boxes[1];
  auto settle = [&world] { world.run_for(bu::Duration::seconds(30)); };
  auto d = deploy_function(world, operator_client, lb_box, bf::loadbalancer_manifest(),
                           "", "loadbalancer", config.serialize(), settle);
  ASSERT_TRUE(d.tokens.has_value()) << d.error;

  d.conn->invoke(d.tokens->invocation.bytes(), bu::to_bytes("onion"));
  world.run_for(bu::Duration::seconds(10));
  ASSERT_FALSE(d.outputs.empty());
  const std::string onion = bu::to_string(d.outputs.back());
  ASSERT_FALSE(onion.empty());

  // Two concurrent downloads with a 1-client watermark force a remote
  // replica onto boxes[2].
  struct Download {
    std::unique_ptr<bt::OnionProxy> proxy;
    std::unique_ptr<bt::HsClient> hs;
    std::size_t received = 0;
    bool done = false;
  };
  std::vector<std::unique_ptr<Download>> downloads;
  for (int i = 0; i < 2; ++i) {
    auto dl = std::make_unique<Download>();
    dl->proxy = world.bed().make_client("dl" + std::to_string(i), 4e6);
    dl->hs = std::make_unique<bt::HsClient>(*dl->proxy, world.bed().directory());
    Download* raw = dl.get();
    world.sim().after(bu::Duration::seconds(1 + i), [raw, onion] {
      raw->hs->connect(onion, [raw](bt::CircuitOrigin* circ) {
        if (circ == nullptr) return;
        bt::Stream::Callbacks cbs;
        cbs.on_data = [raw](bu::ByteView data) { raw->received += data.size(); };
        cbs.on_end = [raw] { raw->done = true; };
        bt::Stream* stream = circ->open_stream({0, 80}, std::move(cbs));
        stream->set_on_connected([stream] { stream->send(bu::to_bytes("GET\n")); });
      });
    });
    downloads.push_back(std::move(dl));
  }
  world.run_for(bu::Duration::seconds(90));
  for (const auto& dl : downloads) EXPECT_TRUE(dl->done);

  // Kill the replica's box: router and server go down together.
  wire_box_crash(engine, world, boxes[2]);
  engine.crash_now(world.bed().router_by_fingerprint(boxes[2])->node());
  world.run_for(bu::Duration::seconds(240));

  // The front end must have failed the replica over to boxes[3]; ask it
  // over a fresh (reliable) connection — the operator's original circuit
  // may itself have crossed the dead box.
  bool ok = false;
  bu::Bytes status;
  operator_client.bento->invoke_reliable(lb_box, d.tokens->invocation.bytes(),
                                         bu::to_bytes("status"),
                                         [&](bool o, bu::Bytes out, int) {
                                           ok = o;
                                           status = std::move(out);
                                         });
  world.run_for(bu::Duration::seconds(60));
  ASSERT_TRUE(ok);
  EXPECT_NE(bu::to_string(status).find("failovers:1"), std::string::npos)
      << "status: " << bu::to_string(status);

  const std::string jsonl = rec.jsonl();
  EXPECT_NE(jsonl.find("\"ev\":\"lb.failover\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"ev\":\"chaos.fault\""), std::string::npos);
}

// Shard survives losing a Dropbox: repair() probes the placements,
// reconstructs from the K survivors, re-seeds the lost shard onto a spare,
// and a K-subset fetch that includes the repaired slot round-trips.
TEST(Chaos, ShardRepairAfterDropboxLoss) {
  RecorderScope rec("ShardRepairAfterDropboxLoss");
  bc::BentoWorldOptions options;
  options.testbed.seed = chaos_seed();
  options.testbed.guards = 3;
  options.testbed.middles = 5;
  options.testbed.exits = 3;
  bc::BentoWorld world(options);
  world.start();
  bch::ChaosEngine engine(world.sim(), world.bed().net());
  engine.install({});

  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  ASSERT_GE(boxes.size(), 6u);

  bu::Rng rng(11);
  const bu::Bytes file = rng.bytes(20'000);

  bf::ShardClient shard_client(*client.bento, 3, 5);
  std::vector<bf::ShardClient::Placement> placements;
  bool store_ok = false;
  shard_client.store(file, {boxes[0], boxes[1], boxes[2], boxes[3], boxes[4]},
                     [&](bool ok, std::vector<bf::ShardClient::Placement> p) {
                       store_ok = ok;
                       placements = std::move(p);
                     });
  world.run();
  ASSERT_TRUE(store_ok);
  ASSERT_EQ(placements.size(), 5u);

  // Box 1 dies with its Dropbox.
  wire_box_crash(engine, world, boxes[1]);
  engine.crash_now(world.bed().router_by_fingerprint(boxes[1])->node());
  world.run();
  EXPECT_EQ(engine.stats().crashes, 1u);

  bool repair_ok = false;
  std::vector<bf::ShardClient::Placement> updated;
  shard_client.repair(placements, {boxes[5]},
                      [&](bool ok, std::vector<bf::ShardClient::Placement> p) {
                        repair_ok = ok;
                        updated = std::move(p);
                      });
  world.run();
  ASSERT_TRUE(repair_ok);
  ASSERT_EQ(updated.size(), 5u);
  EXPECT_EQ(updated[1].box, boxes[5]);
  EXPECT_EQ(updated[0].box, boxes[0]);
  EXPECT_EQ(updated[4].box, boxes[4]);

  // Fetch from exactly K slots including the repaired one.
  std::vector<bf::ShardClient::Placement> subset(updated.begin(), updated.begin() + 3);
  std::optional<bu::Bytes> fetched;
  shard_client.fetch(subset, [&](std::optional<bu::Bytes> out) { fetched = std::move(out); });
  world.run();
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, file);

  const std::string jsonl = rec.jsonl();
  EXPECT_NE(jsonl.find("\"ev\":\"shard.repair\""), std::string::npos);
}

// A permanently dead target box: every attempt fails, backoff runs its
// course, and the client reports failure after exactly max_attempts.
TEST(Chaos, ClientRetryUntilDeadline) {
  RecorderScope rec("ClientRetryUntilDeadline");
  bc::BentoWorldOptions options;
  options.testbed.seed = chaos_seed();
  bc::BentoWorld world(options);
  world.start();
  bch::ChaosEngine engine(world.sim(), world.bed().net());
  engine.install({});

  const auto& relays = world.bed().consensus().relays;
  std::string victim;
  for (const auto& r : relays) {
    if (r.flags.exit) victim = r.fingerprint();
  }
  ASSERT_FALSE(victim.empty());
  wire_box_crash(engine, world, victim);
  engine.crash_now(world.bed().router_by_fingerprint(victim)->node());
  world.run();

  auto proxy = world.bed().make_client("carol");
  proxy->set_build_timeout(bu::Duration::seconds(2));
  bc::BentoClientConfig config = world.client_config();
  config.retry.max_attempts = 3;
  config.retry.request_timeout = bu::Duration::seconds(5);
  config.retry.backoff_base = bu::Duration::millis(500);
  config.retry.backoff_cap = bu::Duration::seconds(2);
  bc::BentoClient client(*proxy, config);

  bool done = false;
  bool ok = true;
  int attempts = 0;
  client.invoke_reliable(victim, bu::to_bytes("no-such-token"), bu::to_bytes("x"),
                         [&](bool o, bu::Bytes, int a) {
                           done = true;
                           ok = o;
                           attempts = a;
                         });
  world.run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(attempts, 3);

  const std::string jsonl = rec.jsonl();
  EXPECT_NE(jsonl.find("\"ev\":\"client.retry\""), std::string::npos);
}
