// Function library unit tests: shard coding, proof-of-work.
#include <gtest/gtest.h>

#include "functions/pow.hpp"
#include "functions/shard.hpp"
#include "util/rng.hpp"

namespace bf = bento::functions;
namespace bu = bento::util;

TEST(Gf256, FieldAxioms) {
  bu::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(1, 255));
    const auto b = static_cast<std::uint8_t>(rng.uniform(1, 255));
    const auto c = static_cast<std::uint8_t>(rng.uniform(0, 255));
    EXPECT_EQ(bf::gf256::mul(a, b), bf::gf256::mul(b, a));
    EXPECT_EQ(bf::gf256::mul(a, 1), a);
    EXPECT_EQ(bf::gf256::mul(a, 0), 0);
    EXPECT_EQ(bf::gf256::mul(a, bf::gf256::inv(a)), 1);
    // Distributivity over XOR addition.
    EXPECT_EQ(bf::gf256::mul(a, bf::gf256::add(b, c)),
              bf::gf256::add(bf::gf256::mul(a, b), bf::gf256::mul(a, c)));
  }
  EXPECT_THROW(bf::gf256::inv(0), std::invalid_argument);
}

TEST(Shard, EncodeShapes) {
  bu::Rng rng(2);
  auto data = rng.bytes(1000);
  auto shards = bf::shard_encode(data, 3, 5);
  ASSERT_EQ(shards.size(), 5u);
  for (const auto& s : shards) {
    EXPECT_EQ(s.k, 3);
    EXPECT_EQ(s.n, 5);
    EXPECT_EQ(s.original_size, 1000u);
    EXPECT_EQ(s.data.size(), 334u);  // ceil(1000/3)
  }
  EXPECT_THROW(bf::shard_encode(data, 0, 5), std::invalid_argument);
  EXPECT_THROW(bf::shard_encode(data, 6, 5), std::invalid_argument);
  EXPECT_THROW(bf::shard_encode(data, 128, 128), std::invalid_argument);
}

TEST(Shard, AllShardsDecode) {
  bu::Rng rng(3);
  auto data = rng.bytes(5000);
  auto shards = bf::shard_encode(data, 4, 7);
  auto out = bf::shard_decode(shards);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

TEST(Shard, FewerThanKFails) {
  bu::Rng rng(4);
  auto data = rng.bytes(100);
  auto shards = bf::shard_encode(data, 3, 5);
  shards.resize(2);
  EXPECT_FALSE(bf::shard_decode(shards).has_value());
  EXPECT_FALSE(bf::shard_decode({}).has_value());
}

TEST(Shard, DuplicateShardsDontCount) {
  bu::Rng rng(5);
  auto data = rng.bytes(100);
  auto shards = bf::shard_encode(data, 3, 5);
  std::vector<bf::Shard> dupes = {shards[0], shards[0], shards[0]};
  EXPECT_FALSE(bf::shard_decode(dupes).has_value());
}

TEST(Shard, TrivialReplication) {
  // k=1: every shard alone reconstructs (paper: "Shard simply replicates").
  bu::Rng rng(6);
  auto data = rng.bytes(333);
  auto shards = bf::shard_encode(data, 1, 4);
  for (const auto& s : shards) {
    auto out = bf::shard_decode({s});
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, data);
  }
}

TEST(Shard, SerializeRoundTrip) {
  bu::Rng rng(7);
  auto shards = bf::shard_encode(rng.bytes(64), 2, 3);
  auto back = bf::Shard::deserialize(shards[1].serialize());
  EXPECT_EQ(back.index, shards[1].index);
  EXPECT_EQ(back.data, shards[1].data);
  EXPECT_EQ(back.original_size, 64u);
}

// Property: ANY k-subset of n shards reconstructs (the paper's fountain
// guarantee). Sweep over (k, n) pairs and every k-subset for small n.
class ShardSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ShardSweep, AnyKSubsetReconstructs) {
  const auto [k, n] = GetParam();
  bu::Rng rng(static_cast<std::uint64_t>(k * 100 + n));
  auto data = rng.bytes(static_cast<std::size_t>(97 * k + 13));
  auto shards = bf::shard_encode(data, k, n);

  // Iterate all k-subsets via bitmask (n <= 8 here).
  int subsets_tested = 0;
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    if (__builtin_popcount(mask) != k) continue;
    std::vector<bf::Shard> subset;
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) subset.push_back(shards[static_cast<std::size_t>(i)]);
    }
    auto out = bf::shard_decode(subset);
    ASSERT_TRUE(out.has_value()) << "mask=" << mask;
    ASSERT_EQ(*out, data) << "mask=" << mask;
    ++subsets_tested;
  }
  EXPECT_GT(subsets_tested, 0);
}

INSTANTIATE_TEST_SUITE_P(KofN, ShardSweep,
                         ::testing::Values(std::pair{1, 3}, std::pair{2, 3},
                                           std::pair{2, 4}, std::pair{3, 5},
                                           std::pair{3, 6}, std::pair{4, 6},
                                           std::pair{5, 7}, std::pair{4, 8}));

TEST(Shard, LargeKAndN) {
  bu::Rng rng(9);
  auto data = rng.bytes(20'000);
  auto shards = bf::shard_encode(data, 20, 40);
  // Take an arbitrary 20-subset: the odd-indexed shards.
  std::vector<bf::Shard> subset;
  for (std::size_t i = 1; i < shards.size(); i += 2) subset.push_back(shards[i]);
  auto out = bf::shard_decode(subset);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

TEST(Pow, LeadingZeroBits) {
  EXPECT_EQ(bf::leading_zero_bits(bu::Bytes{0xff}), 0);
  EXPECT_EQ(bf::leading_zero_bits(bu::Bytes{0x7f}), 1);
  EXPECT_EQ(bf::leading_zero_bits(bu::Bytes{0x00, 0x80}), 8);
  EXPECT_EQ(bf::leading_zero_bits(bu::Bytes{0x00, 0x01}), 15);
  EXPECT_EQ(bf::leading_zero_bits(bu::Bytes{0x00, 0x00}), 16);
}

TEST(Pow, SolveAndVerify) {
  const bu::Bytes context = bu::to_bytes("test-context");
  auto nonce = bf::pow_solve(context, 12);
  ASSERT_TRUE(nonce.has_value());
  EXPECT_TRUE(bf::pow_verify(context, *nonce, 12));
  EXPECT_FALSE(bf::pow_verify(context, *nonce + 1, 12) &&
               bf::pow_verify(context, *nonce + 2, 12) &&
               bf::pow_verify(context, *nonce + 3, 12));
  // A stamp for one context is (overwhelmingly) invalid for another.
  EXPECT_FALSE(bf::pow_verify(bu::to_bytes("other"), *nonce, 12));
}

TEST(Pow, DifficultyMonotone) {
  const bu::Bytes context = bu::to_bytes("ctx");
  auto nonce = bf::pow_solve(context, 14);
  ASSERT_TRUE(nonce.has_value());
  EXPECT_TRUE(bf::pow_verify(context, *nonce, 10));   // easier passes
  // Attempt cap respected.
  EXPECT_FALSE(bf::pow_solve(context, 60, 100).has_value());
}
