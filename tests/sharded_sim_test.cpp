// Sharded-simulator determinism suite (DESIGN.md §12): the trace a
// simulation writes must be a pure function of (seed, topology, region
// split) — byte-identical at every shard count, with and without a chaos
// plan, including faults that span region boundaries. Also covers the
// contracts the parallel executor enforces at runtime: the conservative
// lookahead bound on cross-region posts and the exclusive-event barrier.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "obs/trace.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace bch = bento::chaos;
namespace bo = bento::obs;
namespace bs = bento::sim;
namespace bu = bento::util;

using bu::Duration;
using bu::Time;

namespace {

/// Decrements the hop budget in byte 0 and echoes the message back until it
/// reaches zero — deterministic traffic that drains on its own.
class EchoHandler : public bs::MessageHandler {
 public:
  bs::Network* net = nullptr;
  bs::NodeId self = bs::kInvalidNode;

  void on_message(bs::NodeId from, bu::Bytes data) override {
    if (data.empty() || data[0] == 0) return;
    data[0] -= 1;
    net->send(self, from, std::move(data));
  }
};

constexpr int kRegions = 4;
constexpr int kPerRegion = 3;

/// Builds a 4-region / 12-node topology (2 ms intra-region links, 40 ms
/// default cross-region latency), kicks off intra- and cross-region echo
/// traffic — all at the same timestamp, to stress tie-breaking — runs to
/// quiescence and returns the flight-recorder capture.
std::string run_partitioned(std::uint64_t seed, unsigned shards, bool with_chaos) {
  bs::Simulator sim(seed, shards);
  for (int r = 1; r < kRegions; ++r) sim.add_region();
  bs::Network net(sim);
  std::vector<std::unique_ptr<EchoHandler>> handlers;
  std::vector<bs::NodeId> ids;
  for (int r = 0; r < kRegions; ++r) {
    for (int i = 0; i < kPerRegion; ++i) {
      auto h = std::make_unique<EchoHandler>();
      const bs::NodeId id = net.add_node(bs::NodeSpec{.name = "node"}, h.get());
      net.set_region(id, static_cast<std::uint32_t>(r));
      h->net = &net;
      h->self = id;
      ids.push_back(id);
      handlers.push_back(std::move(h));
    }
  }
  for (int r = 0; r < kRegions; ++r) {
    for (int i = 0; i < kPerRegion; ++i) {
      for (int j = i + 1; j < kPerRegion; ++j) {
        net.set_latency(ids[r * kPerRegion + i], ids[r * kPerRegion + j],
                        Duration::millis(2));
      }
    }
  }
  // One explicit cross-region link, slower than the default: the lookahead
  // must still be the 40 ms default covering the unlisted cross pairs.
  net.set_latency(ids[0], ids[kPerRegion], Duration::millis(50));
  EXPECT_EQ(sim.lookahead(), Duration::millis(40));

  bch::ChaosEngine chaos(sim, net);
  if (with_chaos) {
    bch::ChaosPlan plan;
    plan.seed = 7;
    plan.links.push_back(bch::LinkFault{.a = bch::kAnyNode,
                                        .b = bch::kAnyNode,
                                        .drop_p = 0.05,
                                        .dup_p = 0.05,
                                        .jitter_p = 0.10});
    // Partition and crash both span shard boundaries: the cut endpoints live
    // in regions 0 and 1, the crashed node in region 2.
    plan.partitions.push_back(bch::Partition{.a = ids[0],
                                             .b = ids[kPerRegion],
                                             .start = Time::from_micros(200'000),
                                             .heal = Duration::millis(300)});
    plan.crashes.push_back(bch::NodeCrash{.node = ids[2 * kPerRegion],
                                          .at = Time::from_micros(250'000),
                                          .restart_after = Duration::millis(200)});
    chaos.install(std::move(plan));
  }

  bo::recorder().enable(1 << 15);
  const Time start = Time::from_micros(10'000);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto region = static_cast<std::uint32_t>(i / kPerRegion);
    const bs::NodeId src = ids[i];
    const bs::NodeId intra = ids[(i % kPerRegion + 1) % kPerRegion + (i / kPerRegion) * kPerRegion];
    const bs::NodeId cross = ids[(i + kPerRegion) % ids.size()];
    // Posted into the sender's region: send() must run on the worker that
    // owns the sending node's link queues.
    sim.post(region, start, [&net, src, intra, cross] {
      net.send(src, intra, bu::Bytes{5});
      net.send(src, cross, bu::Bytes{3});
    });
  }
  sim.run();
  std::ostringstream os;
  bo::recorder().export_jsonl(os);
  bo::recorder().disable();
  return os.str();
}

}  // namespace

TEST(ShardedSim, TraceByteIdenticalAcrossShardCounts) {
  const std::string one = run_partitioned(11, 1, /*with_chaos=*/false);
  const std::string two = run_partitioned(11, 2, /*with_chaos=*/false);
  const std::string four = run_partitioned(11, 4, /*with_chaos=*/false);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
}

TEST(ShardedSim, ChaosTraceByteIdenticalAcrossShardCounts) {
  const std::string one = run_partitioned(23, 1, /*with_chaos=*/true);
  const std::string two = run_partitioned(23, 2, /*with_chaos=*/true);
  const std::string four = run_partitioned(23, 4, /*with_chaos=*/true);
  EXPECT_FALSE(one.empty());
  EXPECT_NE(one.find("chaos.fault"), std::string::npos);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
}

TEST(ShardedSim, DifferentSeedsDiverge) {
  EXPECT_NE(run_partitioned(11, 2, true), run_partitioned(12, 2, true));
}

namespace {

/// Single-region scenario mixing timers, nested scheduling and exclusive
/// events: the serial stepper (shards=1) and the solo windowed executor
/// (shards>1) must produce identical rings.
std::string run_single_region(unsigned shards) {
  bs::Simulator sim(99, shards);
  bo::recorder().enable(1 << 12);
  for (int i = 0; i < 16; ++i) {
    sim.at(Time::from_micros(100 + i), [&sim, i] {
      bo::trace(bo::Ev::FnInvoke, static_cast<std::uint32_t>(i), 1);
      sim.after(Duration::micros(50), [i] {
        bo::trace(bo::Ev::FnInvoke, static_cast<std::uint32_t>(i), 2);
      });
      if (i == 3) {
        // Exclusive scheduled from inside a (solo) window: must still fire
        // after every same-timestamp region event, exactly as in serial.
        sim.at_exclusive(sim.now() + Duration::micros(10), [&sim] {
          bo::trace(bo::Ev::FnShutdown, 7, 0);
          sim.after(Duration::micros(5), [] { bo::trace(bo::Ev::FnShutdown, 8, 0); });
        });
      }
    });
  }
  sim.run();
  std::ostringstream os;
  bo::recorder().export_jsonl(os);
  bo::recorder().disable();
  return os.str();
}

}  // namespace

TEST(ShardedSim, SingleRegionWindowedMatchesSerial) {
  const std::string serial = run_single_region(1);
  const std::string sharded = run_single_region(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, sharded);
}

TEST(ShardedSim, CrossRegionPostInsideWindowRespectsLookahead) {
  bs::Simulator sim(1, 1);
  const std::uint32_t r1 = sim.add_region();
  sim.set_lookahead(Duration::millis(10));
  sim.at(Time::from_micros(100), [&sim, r1] {
    // Violates the conservative bound: the target window may already be past
    // this timestamp on another worker.
    sim.post(r1, sim.now() + Duration::micros(1), [] {});
  });
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(ShardedSim, ExclusiveFromParallelWindowThrows) {
  bs::Simulator sim(1, 1);
  const std::uint32_t r1 = sim.add_region();
  sim.set_lookahead(Duration::millis(10));
  sim.post(r1, Time::from_micros(100), [&sim] {
    sim.at_exclusive(sim.now() + Duration::millis(50), [] {});
  });
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(ShardedSim, CrossRegionPostAtBarrierIsAllowed) {
  bs::Simulator sim(1, 1);
  const std::uint32_t r1 = sim.add_region();
  sim.set_lookahead(Duration::millis(10));
  int fired = 0;
  sim.post(r1, Time::from_micros(50), [&sim, &fired] {
    sim.post(0, sim.now() + Duration::millis(10), [&fired] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(ShardedSim, RegionRngStreamsAreShardInvariantAndDistinct) {
  auto draw = [](unsigned shards) {
    bs::Simulator sim(1234, shards);
    sim.add_region();
    std::vector<std::uint64_t> out;
    // Setup context draws from region 0 (the master stream).
    out.push_back(sim.rng().next_u64());
    return out;
  };
  EXPECT_EQ(draw(1), draw(4));
  // Region 0 keeps the exact pre-sharding stream.
  bs::Simulator sharded(1234, 2);
  sharded.add_region();
  bu::Rng master(1234);
  EXPECT_EQ(sharded.rng().next_u64(), master.next_u64());
}

TEST(ShardedSim, EnvOverrideSelectsShardCount) {
  ::setenv("BENTO_SIM_SHARDS", "4", 1);
  EXPECT_EQ(bs::Simulator(1).shards(), 4u);
  ::setenv("BENTO_SIM_SHARDS", "99", 1);
  EXPECT_EQ(bs::Simulator(1).shards(), bs::Simulator::kMaxShards);
  ::setenv("BENTO_SIM_SHARDS", "garbage", 1);
  EXPECT_EQ(bs::Simulator(1).shards(), 1u);
  ::unsetenv("BENTO_SIM_SHARDS");
  EXPECT_EQ(bs::Simulator(1).shards(), 1u);
  // An explicit constructor argument beats the environment.
  ::setenv("BENTO_SIM_SHARDS", "8", 1);
  EXPECT_EQ(bs::Simulator(1, 2).shards(), 2u);
  ::unsetenv("BENTO_SIM_SHARDS");
}

TEST(ShardedSim, EnvOverrideKeepsTraceIdentical) {
  ::setenv("BENTO_SIM_SHARDS", "2", 1);
  const std::string via_env = run_partitioned(11, 0, /*with_chaos=*/false);
  ::unsetenv("BENTO_SIM_SHARDS");
  EXPECT_EQ(via_env, run_partitioned(11, 1, /*with_chaos=*/false));
}
