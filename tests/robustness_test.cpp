// Adversarial/robustness tests: malformed wire input at every trust
// boundary, consensus verification at clients, failure injection, and
// crash-consistent recovery of the persistent sealed blob store.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "chaos/chaos.hpp"
#include "obs/trace.hpp"
#include "core/container.hpp"
#include "core/world.hpp"
#include "functions/library.hpp"
#include "functions/shard.hpp"
#include "store/store.hpp"
#include "tor/testbed.hpp"
#include "tor/wire.hpp"

namespace bc = bento::core;
namespace bch = bento::chaos;
namespace bf = bento::functions;
namespace bs = bento::store;
namespace bt = bento::tor;
namespace bu = bento::util;

namespace {

/// Topology seed for the durability-torture matrix: $BENTO_CHAOS_SEED when
/// set (CI sweeps 1..8), otherwise the test's own default — the recovery
/// contract is seed-independent because every append is synced.
std::uint64_t chaos_seed(std::uint64_t fallback) {
  const char* s = std::getenv("BENTO_CHAOS_SEED");
  if (s == nullptr || *s == '\0') return fallback;
  return std::strtoull(s, nullptr, 10);
}

/// Flight recorder for one durability test; on destruction writes the
/// capture — crash edges, recovery callbacks and the store.replay spans —
/// to $BENTO_CHAOS_ARTIFACT_DIR/<name>.jsonl if the test failed.
class RecorderScope {
 public:
  explicit RecorderScope(std::string name) : name_(std::move(name)) {
    bento::obs::recorder().enable(1 << 15);
  }

  ~RecorderScope() {
    const char* dir = std::getenv("BENTO_CHAOS_ARTIFACT_DIR");
    if (dir != nullptr && *dir != '\0' && ::testing::Test::HasFailure()) {
      std::ostringstream os;
      bento::obs::recorder().export_jsonl(os);
      std::ofstream out(std::string(dir) + "/" + name_ + ".jsonl");
      out << os.str();
    }
    bento::obs::recorder().disable();
  }

 private:
  std::string name_;
};

struct Deployed {
  std::shared_ptr<bc::BentoConnection> conn;
  std::optional<bc::TokenPair> tokens;
  std::string error;
  std::vector<bu::Bytes> outputs;
};

/// Connect + spawn + upload, draining the world between steps.
Deployed deploy_function(bc::BentoWorld& world, bc::BentoWorld::Client& client,
                         const std::string& box,
                         const bc::FunctionManifest& manifest,
                         const std::string& source) {
  Deployed d;
  client.bento->connect(box, [&](std::shared_ptr<bc::BentoConnection> conn) {
    d.conn = std::move(conn);
  });
  world.run();
  if (d.conn == nullptr) {
    d.error = "connect failed";
    return d;
  }
  d.conn->set_output_handler(
      [&d](bu::Bytes out) { d.outputs.push_back(std::move(out)); });
  bool ok = false;
  d.conn->spawn(manifest.image, [&](bool s, std::string err) {
    ok = s;
    if (!s) d.error = err;
  });
  world.run();
  if (!ok) return d;
  d.conn->upload(manifest, source, "", {},
                 [&](std::optional<bc::TokenPair> tokens, std::string err) {
                   d.tokens = std::move(tokens);
                   if (!err.empty()) d.error = err;
                 });
  world.run();
  return d;
}

/// Wires the crash (down edge) and recover_stores (restart edge) handlers
/// for one Bento box; replay reports land in `reports` keyed by
/// "<fingerprint>/<store name>" and `recoveries` counts callback firings.
void wire_durable_box(bch::ChaosEngine& engine, bc::BentoWorld& world,
                      const std::string& fingerprint, int& recoveries,
                      std::map<std::string, bs::ReplayReport>& reports) {
  bt::Router* router = world.bed().router_by_fingerprint(fingerprint);
  ASSERT_NE(router, nullptr);
  engine.set_node_handler(router->node(), [&world, fingerprint](bool up) {
    if (up) return;
    if (bc::BentoServer* server = world.server_for(fingerprint)) server->crash();
    world.bed().router_by_fingerprint(fingerprint)->crash();
  });
  engine.set_recovery_callback(
      router->node(), [&world, &recoveries, &reports, fingerprint] {
        ++recoveries;
        bc::BentoServer* server = world.server_for(fingerprint);
        ASSERT_NE(server, nullptr);
        for (auto& [name, report] : server->recover_stores()) {
          reports[fingerprint + "/" + name] = report;
        }
      });
}

/// The box's store-backed container named `name` (tests deploy one each).
bs::BlobStore* store_of(bc::BentoServer* server, const std::string& name) {
  if (server == nullptr) return nullptr;
  for (const bc::Container* container : server->containers()) {
    if (container->manifest().name == name && container->blob_store() != nullptr) {
      return container->blob_store();
    }
  }
  return nullptr;
}

}  // namespace

// The tentpole durability contract (DESIGN.md §15): a chaos crash+restart
// in the middle of a Dropbox/Shard workload must round-trip every stored
// byte through the sealed log — contents recover byte-identically
// (digest-witnessed), and a K-subset Shard fetch that leans on the
// recovered slot still decodes the original file.
TEST(Robustness, PersistentStoreSurvivesCrashRestart) {
  RecorderScope recorder("persistent_store_crash_restart");
  bc::BentoWorldOptions options;
  options.testbed.seed = chaos_seed(7);
  options.testbed.guards = 3;
  options.testbed.middles = 5;
  options.testbed.exits = 3;
  options.persistent_store = true;
  bc::BentoWorld world(options);
  world.start();
  bch::ChaosEngine engine(world.sim(), world.bed().net());
  engine.install({});

  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  ASSERT_GE(boxes.size(), 6u);

  // Shard assignments: one Dropbox per slot across boxes 0..4.
  bu::Rng rng(11);
  const bu::Bytes file = rng.bytes(20'000);
  bf::ShardClient shard_client(*client.bento, 3, 5);
  std::vector<bf::ShardClient::Placement> placements;
  bool store_ok = false;
  shard_client.store(file, {boxes[0], boxes[1], boxes[2], boxes[3], boxes[4]},
                     [&](bool ok, std::vector<bf::ShardClient::Placement> p) {
                       store_ok = ok;
                       placements = std::move(p);
                     });
  world.run();
  ASSERT_TRUE(store_ok);
  ASSERT_EQ(placements.size(), 5u);

  // Alice's own Dropbox workload on box 5.
  auto d = deploy_function(world, client, boxes[5], bf::dropbox_manifest(),
                           bf::dropbox_source());
  ASSERT_TRUE(d.tokens.has_value()) << d.error;
  const bu::Bytes payload = rng.bytes(12'000);
  bu::Bytes put = bu::to_bytes("PUT:");
  bu::append(put, payload);
  d.conn->invoke(d.tokens->invocation.bytes(), put);
  world.run();
  ASSERT_FALSE(d.outputs.empty());
  EXPECT_EQ(bu::to_string(d.outputs.back()), "OK");

  // Byte-identity witnesses over the pre-crash namespaces.
  bs::BlobStore* dbox = store_of(world.server_for(boxes[5]), "dropbox");
  ASSERT_NE(dbox, nullptr);
  const bento::crypto::Digest dropbox_digest = dbox->snapshot_digest();
  bs::BlobStore* slot1 = store_of(world.server_for(boxes[1]), "dropbox");
  ASSERT_NE(slot1, nullptr);
  const bento::crypto::Digest shard_digest = slot1->snapshot_digest();

  // Crash the Shard slot-1 box and the Dropbox box; both restart after 2 s
  // and must rebuild from durable media via the recovery callback.
  int recoveries = 0;
  std::map<std::string, bs::ReplayReport> reports;
  for (const std::string& fp : {boxes[1], boxes[5]}) {
    wire_durable_box(engine, world, fp, recoveries, reports);
    engine.crash_now(world.bed().router_by_fingerprint(fp)->node(),
                     bu::Duration::seconds(2));
  }
  world.run();
  EXPECT_EQ(engine.stats().crashes, 2u);
  EXPECT_EQ(engine.stats().restarts, 2u);
  ASSERT_EQ(recoveries, 2);
  ASSERT_EQ(reports.count(boxes[5] + "/dropbox"), 1u);
  ASSERT_EQ(reports.count(boxes[1] + "/dropbox"), 1u);
  // Every append was synced, so nothing is torn and nothing was dropped.
  EXPECT_FALSE(reports[boxes[5] + "/dropbox"].torn);
  EXPECT_GE(reports[boxes[5] + "/dropbox"].live_files, 1u);
  EXPECT_FALSE(reports[boxes[1] + "/dropbox"].torn);

  // A fresh Dropbox on box 5 adopts the recovered store: the stored bytes
  // come back unchanged and the namespace digest matches exactly.
  auto d2 = deploy_function(world, client, boxes[5], bf::dropbox_manifest(),
                            bf::dropbox_source());
  ASSERT_TRUE(d2.tokens.has_value()) << d2.error;
  d2.conn->invoke(d2.tokens->invocation.bytes(), bu::to_bytes("GET:"));
  world.run();
  ASSERT_FALSE(d2.outputs.empty());
  EXPECT_EQ(d2.outputs.back(), payload);
  bs::BlobStore* dbox2 = store_of(world.server_for(boxes[5]), "dropbox");
  ASSERT_NE(dbox2, nullptr);
  EXPECT_EQ(dbox2->snapshot_digest(), dropbox_digest);

  // Same on the shard box: the slot-1 assignment survived byte-identically…
  auto s2 = deploy_function(world, client, boxes[1], bf::dropbox_manifest(),
                            bf::dropbox_source());
  ASSERT_TRUE(s2.tokens.has_value()) << s2.error;
  bs::BlobStore* slot1b = store_of(world.server_for(boxes[1]), "dropbox");
  ASSERT_NE(slot1b, nullptr);
  EXPECT_EQ(slot1b->snapshot_digest(), shard_digest);

  // …and a K-subset fetch that includes the recovered slot decodes the file.
  std::vector<bf::ShardClient::Placement> subset = {placements[0], placements[1],
                                                    placements[2]};
  subset[1].invocation_token = s2.tokens->invocation.bytes();
  subset[1].shutdown_token = s2.tokens->shutdown.bytes();
  std::optional<bu::Bytes> fetched;
  shard_client.fetch(subset,
                     [&](std::optional<bu::Bytes> out) { fetched = std::move(out); });
  world.run();
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, file);
}

// Torn/corrupt-tail recovery end to end: flip a byte in the newest durable
// frame, crash the box, and replay must keep the longest valid prefix — the
// previous version of the file — rather than trusting or rejecting the log
// wholesale.
TEST(Robustness, PersistentStoreCorruptTailRecoversLongestPrefix) {
  RecorderScope recorder("persistent_store_corrupt_tail");
  bc::BentoWorldOptions options;
  options.testbed.seed = chaos_seed(9);
  options.persistent_store = true;
  bc::BentoWorld world(options);
  world.start();
  bch::ChaosEngine engine(world.sim(), world.bed().net());
  engine.install({});

  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  ASSERT_FALSE(boxes.empty());
  auto d = deploy_function(world, client, boxes[0], bf::dropbox_manifest(),
                           bf::dropbox_source());
  ASSERT_TRUE(d.tokens.has_value()) << d.error;

  d.conn->invoke(d.tokens->invocation.bytes(), bu::to_bytes("PUT:first version"));
  world.run();
  d.conn->invoke(d.tokens->invocation.bytes(), bu::to_bytes("PUT:second version!"));
  world.run();
  ASSERT_GE(d.outputs.size(), 2u);
  EXPECT_EQ(bu::to_string(d.outputs.back()), "OK");

  // Media fault: a flipped byte inside the newest frame's sealed body.
  bs::Volume* volume = world.server_for(boxes[0])->volumes().find("dropbox");
  ASSERT_NE(volume, nullptr);
  volume->corrupt_tail(/*byte_from_end=*/10);

  int recoveries = 0;
  std::map<std::string, bs::ReplayReport> reports;
  wire_durable_box(engine, world, boxes[0], recoveries, reports);
  engine.crash_now(world.bed().router_by_fingerprint(boxes[0])->node(),
                   bu::Duration::seconds(2));
  world.run();
  ASSERT_EQ(recoveries, 1);
  ASSERT_EQ(reports.count(boxes[0] + "/dropbox"), 1u);
  EXPECT_TRUE(reports[boxes[0] + "/dropbox"].torn);
  EXPECT_GT(reports[boxes[0] + "/dropbox"].truncated_bytes, 0u);

  // The recovered namespace holds the longest valid prefix: version one.
  auto d2 = deploy_function(world, client, boxes[0], bf::dropbox_manifest(),
                            bf::dropbox_source());
  ASSERT_TRUE(d2.tokens.has_value()) << d2.error;
  d2.conn->invoke(d2.tokens->invocation.bytes(), bu::to_bytes("GET:"));
  world.run();
  ASSERT_FALSE(d2.outputs.empty());
  EXPECT_EQ(bu::to_string(d2.outputs.back()), "first version");
}

TEST(Robustness, RespawnInSameCascadeKeepsDurableStoreName) {
  // Regression: container destruction is deferred (+0us), so the store-name
  // claim must be released *eagerly* on removal — otherwise a shutdown
  // followed by a respawn of the same function within one event cascade is
  // uniquified onto an empty "dropbox#2" volume and silently loses its
  // durable state.
  RecorderScope recorder("persistent_store_respawn_same_cascade");
  bc::BentoWorldOptions options;
  options.testbed.seed = chaos_seed(13);
  options.persistent_store = true;
  bc::BentoWorld world(options);
  world.start();

  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  ASSERT_FALSE(boxes.empty());
  auto d = deploy_function(world, client, boxes[0], bf::dropbox_manifest(),
                           bf::dropbox_source());
  ASSERT_TRUE(d.tokens.has_value()) << d.error;
  d.conn->invoke(d.tokens->invocation.bytes(),
                 bu::to_bytes("PUT:durable payload"));
  world.run();
  ASSERT_FALSE(d.outputs.empty());
  EXPECT_EQ(bu::to_string(d.outputs.back()), "OK");

  bc::BentoServer* server = world.server_for(boxes[0]);
  ASSERT_NE(server, nullptr);
  bs::BlobStore* dbox = store_of(server, "dropbox");
  ASSERT_NE(dbox, nullptr);
  const bento::crypto::Digest digest = dbox->snapshot_digest();
  std::uint64_t id = 0;
  for (const bc::Container* container : server->containers()) {
    if (container->manifest().name == "dropbox") id = container->id();
  }
  ASSERT_NE(id, 0u);

  // Shutdown, then reopen the store before any deferred event has run —
  // exactly what a respawn arriving in the same delivery cascade does.
  server->container_died(id, "test: shutdown before respawn");
  std::string key;
  auto reopened = server->take_or_open_store("dropbox", &key);
  EXPECT_EQ(key, "dropbox");
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->snapshot_digest(), digest);

  // Draining the deferred destructor must not disturb the new claim, and
  // no uniquified ghost volume may have been created.
  world.run();
  for (const std::string& vol : server->volumes().keys()) {
    EXPECT_EQ(vol.find('#'), std::string::npos) << vol;
  }
  EXPECT_EQ(*reopened->get("drop.bin"), bu::to_bytes("durable payload"));
  server->release_store_name(key);
}

TEST(Robustness, RelaySurvivesGarbageMessages) {
  bt::Testbed bed;
  bed.finalize();
  bt::Router& relay = bed.router(0);
  auto client = bed.make_client("attacker");

  bu::Rng rng(1);
  // Random garbage of assorted sizes, including cell-sized and cell-marked.
  for (int i = 0; i < 50; ++i) {
    bu::Bytes junk = rng.bytes(rng.uniform(1, 600));
    bed.net().send(client->node(), relay.node(), std::move(junk));
  }
  bu::Bytes marked(bt::kCellLen + 1, 0);
  marked[0] = bt::kCellFrameMarker;  // valid frame, garbage cell contents
  bed.net().send(client->node(), relay.node(), marked);
  bed.run();

  // The relay still builds circuits afterwards.
  bt::CircuitOrigin* circ = nullptr;
  client->build_circuit({}, [&](bt::CircuitOrigin* c) { circ = c; });
  bed.run();
  EXPECT_NE(circ, nullptr);
}

TEST(Robustness, RelayCellsOnUnknownCircuitsIgnored) {
  bt::Testbed bed;
  bed.finalize();
  bt::Router& relay = bed.router(1);
  auto client = bed.make_client("attacker");

  bt::Cell cell;
  cell.circ_id = 0xdeadbeef;  // never created
  cell.command = bt::CellCommand::Relay;
  bed.net().send(client->node(), relay.node(), bt::frame_cell(cell));
  cell.command = bt::CellCommand::Destroy;
  bed.net().send(client->node(), relay.node(), bt::frame_cell(cell));
  bed.run();
  EXPECT_EQ(relay.counters().circuits_created, 0u);
}

TEST(Robustness, ClientRejectsForgedConsensus) {
  bt::Testbed bed;
  bed.finalize();
  // A consensus signed by a different "authority".
  bu::Rng rng(2);
  bt::DirectoryAuthority rogue(rng);
  auto forged = rogue.make_consensus(bed.sim().now());
  EXPECT_THROW(bt::OnionProxy(bed.sim(), bed.net(),
                              bento::sim::NodeSpec{"victim", 1e6, 1e6}, forged,
                              bed.directory().authority_key(), bu::Rng(3)),
               std::invalid_argument);
}

TEST(Robustness, BentoServerSurvivesProtocolGarbage) {
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("attacker");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());

  // Raw stream to the Bento port, feeding junk instead of framed messages.
  std::shared_ptr<bc::BentoConnection> conn;
  client.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> c) {
    conn = std::move(c);
  });
  world.run();
  ASSERT_NE(conn, nullptr);

  // Upload for a container that was never spawned.
  conn->upload(bc::FunctionManifest{}, "x = 1\n", "", {},
               [&](std::optional<bc::TokenPair> tokens, std::string error) {
                 EXPECT_FALSE(tokens.has_value());
                 EXPECT_FALSE(error.empty());
               });
  world.run();

  // Spawn an unknown image.
  bool spawn_ok = true;
  conn->spawn("windows-me", [&](bool ok, std::string) { spawn_ok = ok; });
  world.run();
  EXPECT_FALSE(spawn_ok);

  // Bogus shutdown token.
  bool shutdown_ok = true;
  conn->shutdown(bu::Bytes(bc::kTokenLen, 0xaa), [&](bool ok) { shutdown_ok = ok; });
  world.run();
  EXPECT_FALSE(shutdown_ok);

  // The server is still healthy.
  std::optional<bc::MiddleboxPolicy> policy;
  conn->get_policy([&](std::optional<bc::MiddleboxPolicy> p) { policy = std::move(p); });
  world.run();
  EXPECT_TRUE(policy.has_value());
  EXPECT_EQ(world.server_for(boxes[0])->live_containers(), 0u);
}

TEST(Robustness, DoubleSpawnDoubleUploadHandled) {
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  std::shared_ptr<bc::BentoConnection> conn;
  client.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> c) {
    conn = std::move(c);
  });
  world.run();
  ASSERT_NE(conn, nullptr);

  bool ok1 = false;
  conn->spawn(bc::kImagePython, [&](bool ok, std::string) { ok1 = ok; });
  world.run();
  ASSERT_TRUE(ok1);

  bc::FunctionManifest manifest;
  manifest.name = "f";
  manifest.resources.memory_bytes = 1 << 20;
  manifest.resources.cpu_instructions = 1'000'000;
  manifest.resources.disk_bytes = 1 << 20;
  manifest.resources.network_bytes = 1 << 20;
  std::optional<bc::TokenPair> first, second;
  conn->upload(manifest, "def on_message(m):\n    api.send(m)\n", "", {},
               [&](std::optional<bc::TokenPair> t, std::string) { first = std::move(t); });
  world.run();
  ASSERT_TRUE(first.has_value());

  // Second upload into the same container is refused.
  conn->upload(manifest, "def on_message(m):\n    pass\n", "", {},
               [&](std::optional<bc::TokenPair> t, std::string e) {
                 second = std::move(t);
                 EXPECT_NE(e.find("already"), std::string::npos);
               });
  world.run();
  EXPECT_FALSE(second.has_value());

  // The original function still answers.
  std::vector<bu::Bytes> outputs;
  conn->set_output_handler([&](bu::Bytes out) { outputs.push_back(std::move(out)); });
  conn->invoke(first->invocation.bytes(), bu::to_bytes("still here"));
  world.run();
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(bu::to_string(outputs[0]), "still here");
}

TEST(Robustness, ClientStreamDeathOrphansFunctionSafely) {
  // The paper: "Bento functions fate-share with the middlebox nodes they
  // run on" — but a *client* vanishing must not hurt the function; it just
  // loses its reply channel until someone re-invokes.
  bc::BentoWorld world;
  world.start();
  auto alice = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  std::shared_ptr<bc::BentoConnection> conn;
  alice.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> c) {
    conn = std::move(c);
  });
  world.run();
  bool ok = false;
  std::optional<bc::TokenPair> tokens;
  conn->spawn(bc::kImagePython, [&](bool s, std::string) { ok = s; });
  world.run();
  ASSERT_TRUE(ok);
  bc::FunctionManifest manifest;
  manifest.name = "counter";
  manifest.required = {bento::sandbox::Syscall::Clock};
  manifest.resources.memory_bytes = 1 << 20;
  manifest.resources.cpu_instructions = 1'000'000;
  manifest.resources.disk_bytes = 1 << 20;
  manifest.resources.network_bytes = 1 << 20;
  conn->upload(manifest,
               "state = {\"n\": 0}\n"
               "def on_message(m):\n"
               "    state[\"n\"] += 1\n"
               "    api.send(str(state[\"n\"]))\n",
               "", {},
               [&](std::optional<bc::TokenPair> t, std::string) { tokens = std::move(t); });
  world.run();
  ASSERT_TRUE(tokens.has_value());

  conn->invoke(tokens->invocation.bytes(), {});
  world.run();
  conn->close();  // Alice vanishes mid-life
  world.run();
  EXPECT_EQ(world.server_for(boxes[0])->live_containers(), 1u);  // still alive

  // Bob picks the function up with the shared token; state survived.
  auto bob = world.make_client("bob");
  std::vector<bu::Bytes> outputs;
  bob.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> c) {
    ASSERT_NE(c, nullptr);
    c->set_output_handler([&](bu::Bytes out) { outputs.push_back(std::move(out)); });
    c->invoke(tokens->invocation.bytes(), {});
  });
  world.run();
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(bu::to_string(outputs[0]), "2");
}

TEST(Robustness, MidTransferCircuitDestroyCleansUpExit) {
  bt::TestbedOptions options;
  options.relay_bandwidth = 400e3;  // slow enough that 2 MB takes ~6 s
  bt::Testbed bed(options);
  bed.finalize();
  bu::Rng rng(9);
  const bu::Bytes big = rng.bytes(2'000'000);
  bed.add_web_server(bt::parse_addr("93.184.216.34"),
                     [&big](const std::string&) { return big; });
  auto client = bed.make_client("alice");
  bt::PathConstraints c;
  c.exit_to = bt::Endpoint{bt::parse_addr("93.184.216.34"), 80};
  bt::CircuitOrigin* circ = nullptr;
  client->build_circuit(c, [&](bt::CircuitOrigin* built) { circ = built; });
  bed.run();
  ASSERT_NE(circ, nullptr);

  std::size_t received = 0;
  bt::Stream::Callbacks cbs;
  cbs.on_data = [&](bu::ByteView d) { received += d.size(); };
  bt::Stream* stream = circ->open_stream(*c.exit_to, std::move(cbs));
  stream->set_on_connected([stream] { stream->send(bu::to_bytes("GET /big\n")); });
  // Let a few hundred KB through, then kill the circuit.
  bed.run_for(bu::Duration::seconds(2.5));
  ASSERT_GT(received, 0u);
  ASSERT_LT(received, big.size());
  circ->destroy();
  client->forget(circ);
  bed.run();  // must quiesce: no runaway retransmission or leaked pumping
  EXPECT_LT(received, big.size());
}

TEST(Robustness, RelayCrashMidHandshakeDoesNotLeak) {
  // Crash every relay while a circuit build is in flight (the CREATE has
  // been sent, no hop has answered yet). The half-open circuit must fail
  // exactly once via the build timeout and release all of its state —
  // LeakSanitizer verifies nothing (circuit, stream, timer token) leaks.
  bt::TestbedOptions options;
  options.seed = 21;
  bt::Testbed bed(options);
  bed.finalize();
  bento::chaos::ChaosEngine engine(bed.sim(), bed.net());
  engine.install({});

  auto client = bed.make_client("alice");
  client->set_build_timeout(bu::Duration::seconds(2));
  int done_calls = 0;
  bt::CircuitOrigin* got = reinterpret_cast<bt::CircuitOrigin*>(1);
  client->build_circuit({}, [&](bt::CircuitOrigin* circ) {
    ++done_calls;
    got = circ;
  });
  // 30 ms in: past the CREATE send, well before the >= 3 RTT build finishes.
  bed.sim().after(bu::Duration::millis(30), [&bed, &engine] {
    for (std::size_t i = 0; i < bed.router_count(); ++i) {
      bt::Router& router = bed.router(i);
      engine.set_node_handler(router.node(), [&router](bool up) {
        if (!up) router.crash();
      });
      engine.crash_now(router.node());
    }
  });
  bed.run();
  EXPECT_EQ(done_calls, 1);
  EXPECT_EQ(got, nullptr);
  EXPECT_EQ(client->open_circuits(), 0u);
  EXPECT_EQ(engine.stats().crashes, bed.router_count());
}

TEST(Robustness, ClosedConnectionIsFreed) {
  // Regression for the BentoConnection self-capture leak class (bentolint
  // BL103): stream callbacks used to hold strong refs to the connection and
  // the client's keep-alive anchor was never pruned, so a closed connection
  // outlived its circuit indefinitely.
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  ASSERT_FALSE(boxes.empty());

  std::weak_ptr<bc::BentoConnection> weak;
  {
    std::shared_ptr<bc::BentoConnection> conn;
    client.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> c) {
      conn = std::move(c);
    });
    world.run();
    ASSERT_NE(conn, nullptr);
    EXPECT_EQ(client.bento->live_connections(), 1u);
    weak = conn;
    conn->close();
    EXPECT_TRUE(conn->closed());
    world.run();
  }  // the caller's strong ref is gone; only the client anchor remains

  client.bento->prune_closed();
  EXPECT_EQ(client.bento->live_connections(), 0u);
  // Nothing else — no stream callback, no pending_ handler — keeps it alive.
  EXPECT_TRUE(weak.expired());

  // A later connect() prunes implicitly: open a second session and check the
  // anchor count reflects only the live one.
  std::shared_ptr<bc::BentoConnection> conn2;
  client.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> c) {
    conn2 = std::move(c);
  });
  world.run();
  ASSERT_NE(conn2, nullptr);
  EXPECT_EQ(client.bento->live_connections(), 1u);
  EXPECT_TRUE(conn2->open());
}
