// Adversarial/robustness tests: malformed wire input at every trust
// boundary, consensus verification at clients, and failure injection.
#include <gtest/gtest.h>

#include "chaos/chaos.hpp"
#include "core/world.hpp"
#include "tor/testbed.hpp"
#include "tor/wire.hpp"

namespace bc = bento::core;
namespace bt = bento::tor;
namespace bu = bento::util;

TEST(Robustness, RelaySurvivesGarbageMessages) {
  bt::Testbed bed;
  bed.finalize();
  bt::Router& relay = bed.router(0);
  auto client = bed.make_client("attacker");

  bu::Rng rng(1);
  // Random garbage of assorted sizes, including cell-sized and cell-marked.
  for (int i = 0; i < 50; ++i) {
    bu::Bytes junk = rng.bytes(rng.uniform(1, 600));
    bed.net().send(client->node(), relay.node(), std::move(junk));
  }
  bu::Bytes marked(bt::kCellLen + 1, 0);
  marked[0] = bt::kCellFrameMarker;  // valid frame, garbage cell contents
  bed.net().send(client->node(), relay.node(), marked);
  bed.run();

  // The relay still builds circuits afterwards.
  bt::CircuitOrigin* circ = nullptr;
  client->build_circuit({}, [&](bt::CircuitOrigin* c) { circ = c; });
  bed.run();
  EXPECT_NE(circ, nullptr);
}

TEST(Robustness, RelayCellsOnUnknownCircuitsIgnored) {
  bt::Testbed bed;
  bed.finalize();
  bt::Router& relay = bed.router(1);
  auto client = bed.make_client("attacker");

  bt::Cell cell;
  cell.circ_id = 0xdeadbeef;  // never created
  cell.command = bt::CellCommand::Relay;
  bed.net().send(client->node(), relay.node(), bt::frame_cell(cell));
  cell.command = bt::CellCommand::Destroy;
  bed.net().send(client->node(), relay.node(), bt::frame_cell(cell));
  bed.run();
  EXPECT_EQ(relay.counters().circuits_created, 0u);
}

TEST(Robustness, ClientRejectsForgedConsensus) {
  bt::Testbed bed;
  bed.finalize();
  // A consensus signed by a different "authority".
  bu::Rng rng(2);
  bt::DirectoryAuthority rogue(rng);
  auto forged = rogue.make_consensus(bed.sim().now());
  EXPECT_THROW(bt::OnionProxy(bed.sim(), bed.net(),
                              bento::sim::NodeSpec{"victim", 1e6, 1e6}, forged,
                              bed.directory().authority_key(), bu::Rng(3)),
               std::invalid_argument);
}

TEST(Robustness, BentoServerSurvivesProtocolGarbage) {
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("attacker");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());

  // Raw stream to the Bento port, feeding junk instead of framed messages.
  std::shared_ptr<bc::BentoConnection> conn;
  client.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> c) {
    conn = std::move(c);
  });
  world.run();
  ASSERT_NE(conn, nullptr);

  // Upload for a container that was never spawned.
  conn->upload(bc::FunctionManifest{}, "x = 1\n", "", {},
               [&](std::optional<bc::TokenPair> tokens, std::string error) {
                 EXPECT_FALSE(tokens.has_value());
                 EXPECT_FALSE(error.empty());
               });
  world.run();

  // Spawn an unknown image.
  bool spawn_ok = true;
  conn->spawn("windows-me", [&](bool ok, std::string) { spawn_ok = ok; });
  world.run();
  EXPECT_FALSE(spawn_ok);

  // Bogus shutdown token.
  bool shutdown_ok = true;
  conn->shutdown(bu::Bytes(bc::kTokenLen, 0xaa), [&](bool ok) { shutdown_ok = ok; });
  world.run();
  EXPECT_FALSE(shutdown_ok);

  // The server is still healthy.
  std::optional<bc::MiddleboxPolicy> policy;
  conn->get_policy([&](std::optional<bc::MiddleboxPolicy> p) { policy = std::move(p); });
  world.run();
  EXPECT_TRUE(policy.has_value());
  EXPECT_EQ(world.server_for(boxes[0])->live_containers(), 0u);
}

TEST(Robustness, DoubleSpawnDoubleUploadHandled) {
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  std::shared_ptr<bc::BentoConnection> conn;
  client.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> c) {
    conn = std::move(c);
  });
  world.run();
  ASSERT_NE(conn, nullptr);

  bool ok1 = false;
  conn->spawn(bc::kImagePython, [&](bool ok, std::string) { ok1 = ok; });
  world.run();
  ASSERT_TRUE(ok1);

  bc::FunctionManifest manifest;
  manifest.name = "f";
  manifest.resources.memory_bytes = 1 << 20;
  manifest.resources.cpu_instructions = 1'000'000;
  manifest.resources.disk_bytes = 1 << 20;
  manifest.resources.network_bytes = 1 << 20;
  std::optional<bc::TokenPair> first, second;
  conn->upload(manifest, "def on_message(m):\n    api.send(m)\n", "", {},
               [&](std::optional<bc::TokenPair> t, std::string) { first = std::move(t); });
  world.run();
  ASSERT_TRUE(first.has_value());

  // Second upload into the same container is refused.
  conn->upload(manifest, "def on_message(m):\n    pass\n", "", {},
               [&](std::optional<bc::TokenPair> t, std::string e) {
                 second = std::move(t);
                 EXPECT_NE(e.find("already"), std::string::npos);
               });
  world.run();
  EXPECT_FALSE(second.has_value());

  // The original function still answers.
  std::vector<bu::Bytes> outputs;
  conn->set_output_handler([&](bu::Bytes out) { outputs.push_back(std::move(out)); });
  conn->invoke(first->invocation.bytes(), bu::to_bytes("still here"));
  world.run();
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(bu::to_string(outputs[0]), "still here");
}

TEST(Robustness, ClientStreamDeathOrphansFunctionSafely) {
  // The paper: "Bento functions fate-share with the middlebox nodes they
  // run on" — but a *client* vanishing must not hurt the function; it just
  // loses its reply channel until someone re-invokes.
  bc::BentoWorld world;
  world.start();
  auto alice = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  std::shared_ptr<bc::BentoConnection> conn;
  alice.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> c) {
    conn = std::move(c);
  });
  world.run();
  bool ok = false;
  std::optional<bc::TokenPair> tokens;
  conn->spawn(bc::kImagePython, [&](bool s, std::string) { ok = s; });
  world.run();
  ASSERT_TRUE(ok);
  bc::FunctionManifest manifest;
  manifest.name = "counter";
  manifest.required = {bento::sandbox::Syscall::Clock};
  manifest.resources.memory_bytes = 1 << 20;
  manifest.resources.cpu_instructions = 1'000'000;
  manifest.resources.disk_bytes = 1 << 20;
  manifest.resources.network_bytes = 1 << 20;
  conn->upload(manifest,
               "state = {\"n\": 0}\n"
               "def on_message(m):\n"
               "    state[\"n\"] += 1\n"
               "    api.send(str(state[\"n\"]))\n",
               "", {},
               [&](std::optional<bc::TokenPair> t, std::string) { tokens = std::move(t); });
  world.run();
  ASSERT_TRUE(tokens.has_value());

  conn->invoke(tokens->invocation.bytes(), {});
  world.run();
  conn->close();  // Alice vanishes mid-life
  world.run();
  EXPECT_EQ(world.server_for(boxes[0])->live_containers(), 1u);  // still alive

  // Bob picks the function up with the shared token; state survived.
  auto bob = world.make_client("bob");
  std::vector<bu::Bytes> outputs;
  bob.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> c) {
    ASSERT_NE(c, nullptr);
    c->set_output_handler([&](bu::Bytes out) { outputs.push_back(std::move(out)); });
    c->invoke(tokens->invocation.bytes(), {});
  });
  world.run();
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(bu::to_string(outputs[0]), "2");
}

TEST(Robustness, MidTransferCircuitDestroyCleansUpExit) {
  bt::TestbedOptions options;
  options.relay_bandwidth = 400e3;  // slow enough that 2 MB takes ~6 s
  bt::Testbed bed(options);
  bed.finalize();
  bu::Rng rng(9);
  const bu::Bytes big = rng.bytes(2'000'000);
  bed.add_web_server(bt::parse_addr("93.184.216.34"),
                     [&big](const std::string&) { return big; });
  auto client = bed.make_client("alice");
  bt::PathConstraints c;
  c.exit_to = bt::Endpoint{bt::parse_addr("93.184.216.34"), 80};
  bt::CircuitOrigin* circ = nullptr;
  client->build_circuit(c, [&](bt::CircuitOrigin* built) { circ = built; });
  bed.run();
  ASSERT_NE(circ, nullptr);

  std::size_t received = 0;
  bt::Stream::Callbacks cbs;
  cbs.on_data = [&](bu::ByteView d) { received += d.size(); };
  bt::Stream* stream = circ->open_stream(*c.exit_to, std::move(cbs));
  stream->set_on_connected([stream] { stream->send(bu::to_bytes("GET /big\n")); });
  // Let a few hundred KB through, then kill the circuit.
  bed.run_for(bu::Duration::seconds(2.5));
  ASSERT_GT(received, 0u);
  ASSERT_LT(received, big.size());
  circ->destroy();
  client->forget(circ);
  bed.run();  // must quiesce: no runaway retransmission or leaked pumping
  EXPECT_LT(received, big.size());
}

TEST(Robustness, RelayCrashMidHandshakeDoesNotLeak) {
  // Crash every relay while a circuit build is in flight (the CREATE has
  // been sent, no hop has answered yet). The half-open circuit must fail
  // exactly once via the build timeout and release all of its state —
  // LeakSanitizer verifies nothing (circuit, stream, timer token) leaks.
  bt::TestbedOptions options;
  options.seed = 21;
  bt::Testbed bed(options);
  bed.finalize();
  bento::chaos::ChaosEngine engine(bed.sim(), bed.net());
  engine.install({});

  auto client = bed.make_client("alice");
  client->set_build_timeout(bu::Duration::seconds(2));
  int done_calls = 0;
  bt::CircuitOrigin* got = reinterpret_cast<bt::CircuitOrigin*>(1);
  client->build_circuit({}, [&](bt::CircuitOrigin* circ) {
    ++done_calls;
    got = circ;
  });
  // 30 ms in: past the CREATE send, well before the >= 3 RTT build finishes.
  bed.sim().after(bu::Duration::millis(30), [&bed, &engine] {
    for (std::size_t i = 0; i < bed.router_count(); ++i) {
      bt::Router& router = bed.router(i);
      engine.set_node_handler(router.node(), [&router](bool up) {
        if (!up) router.crash();
      });
      engine.crash_now(router.node());
    }
  });
  bed.run();
  EXPECT_EQ(done_calls, 1);
  EXPECT_EQ(got, nullptr);
  EXPECT_EQ(client->open_circuits(), 0u);
  EXPECT_EQ(engine.stats().crashes, bed.router_count());
}

TEST(Robustness, ClosedConnectionIsFreed) {
  // Regression for the BentoConnection self-capture leak class (bentolint
  // BL103): stream callbacks used to hold strong refs to the connection and
  // the client's keep-alive anchor was never pruned, so a closed connection
  // outlived its circuit indefinitely.
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  ASSERT_FALSE(boxes.empty());

  std::weak_ptr<bc::BentoConnection> weak;
  {
    std::shared_ptr<bc::BentoConnection> conn;
    client.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> c) {
      conn = std::move(c);
    });
    world.run();
    ASSERT_NE(conn, nullptr);
    EXPECT_EQ(client.bento->live_connections(), 1u);
    weak = conn;
    conn->close();
    EXPECT_TRUE(conn->closed());
    world.run();
  }  // the caller's strong ref is gone; only the client anchor remains

  client.bento->prune_closed();
  EXPECT_EQ(client.bento->live_connections(), 0u);
  // Nothing else — no stream callback, no pending_ handler — keeps it alive.
  EXPECT_TRUE(weak.expired());

  // A later connect() prunes implicitly: open a second session and check the
  // anchor count reflects only the live one.
  std::shared_ptr<bc::BentoConnection> conn2;
  client.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> c) {
    conn2 = std::move(c);
  });
  world.run();
  ASSERT_NE(conn2, nullptr);
  EXPECT_EQ(client.bento->live_connections(), 1u);
  EXPECT_TRUE(conn2->open());
}
