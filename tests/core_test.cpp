// Core unit tests: tokens, policies/manifests, wire protocol, URL parsing.
#include <gtest/gtest.h>

#include "core/api.hpp"
#include "core/message.hpp"
#include "core/policy.hpp"
#include "core/tokens.hpp"
#include "util/rng.hpp"

namespace bc = bento::core;
namespace bu = bento::util;
namespace sb = bento::sandbox;

TEST(Tokens, GenerateAndMatch) {
  bu::Rng rng(1);
  auto pair = bc::TokenPair::generate(rng);
  EXPECT_EQ(pair.invocation.bytes().size(), bc::kTokenLen);
  EXPECT_TRUE(pair.invocation.matches(pair.invocation));
  EXPECT_FALSE(pair.invocation.matches(pair.shutdown));
  EXPECT_TRUE(pair.shutdown.matches(pair.shutdown.bytes()));
}

TEST(Tokens, EmptyNeverMatches) {
  bc::Token empty;
  EXPECT_FALSE(empty.matches(empty));
  EXPECT_FALSE(empty.matches(bu::Bytes{}));
}

TEST(Tokens, FromBytesValidates) {
  bu::Rng rng(2);
  auto t = bc::Token::from_bytes(rng.bytes(bc::kTokenLen));
  EXPECT_EQ(t.hex().size(), 32u);
  EXPECT_THROW(bc::Token::from_bytes(rng.bytes(5)), std::invalid_argument);
}

TEST(Policy, SerializeRoundTrip) {
  auto p = bc::MiddleboxPolicy::permissive();
  p.max_per_function.memory_bytes = 123456;
  auto back = bc::MiddleboxPolicy::deserialize(p.serialize());
  EXPECT_EQ(back.max_per_function.memory_bytes, 123456u);
  EXPECT_EQ(back.allowed.allowed(), p.allowed.allowed());
  EXPECT_EQ(back.images, p.images);
}

TEST(Policy, PermissiveExcludesDangerousSyscalls) {
  auto p = bc::MiddleboxPolicy::permissive();
  EXPECT_FALSE(p.allowed.allows(sb::Syscall::Fork));
  EXPECT_FALSE(p.allowed.allows(sb::Syscall::Exec));
  EXPECT_TRUE(p.allowed.allows(sb::Syscall::FsWrite));
  EXPECT_TRUE(p.offers_image(bc::kImagePythonOpSgx));
}

TEST(Policy, NoStorageRefusesDisk) {
  auto p = bc::MiddleboxPolicy::no_storage();
  EXPECT_FALSE(p.allowed.allows(sb::Syscall::FsWrite));
  EXPECT_FALSE(p.allowed.allows(sb::Syscall::FsRead));
  EXPECT_EQ(p.max_per_function.disk_bytes, 0u);
}

TEST(Policy, AdmitChecksSyscallsResourcesImage) {
  auto policy = bc::MiddleboxPolicy::permissive();
  bc::FunctionManifest m;
  m.name = "f";
  m.required = {sb::Syscall::FsRead, sb::Syscall::Clock};
  m.resources = policy.max_per_function;
  EXPECT_TRUE(bc::admit(policy, m).admitted);

  auto forky = m;
  forky.required.push_back(sb::Syscall::Fork);
  auto d1 = bc::admit(policy, forky);
  EXPECT_FALSE(d1.admitted);
  EXPECT_NE(d1.reason.find("fork"), std::string::npos);

  auto hog = m;
  hog.resources.memory_bytes = policy.max_per_function.memory_bytes + 1;
  EXPECT_FALSE(bc::admit(policy, hog).admitted);

  auto weird = m;
  weird.image = "windows-3.1";
  EXPECT_FALSE(bc::admit(policy, weird).admitted);
}

TEST(Policy, ManifestSerializeRoundTrip) {
  bc::FunctionManifest m;
  m.name = "browser";
  m.required = {sb::Syscall::NetConnect, sb::Syscall::Random};
  m.image = bc::kImagePythonOpSgx;
  m.resources.disk_bytes = 42;
  auto back = bc::FunctionManifest::deserialize(m.serialize());
  EXPECT_EQ(back.name, "browser");
  EXPECT_EQ(back.required, m.required);
  EXPECT_EQ(back.image, bc::kImagePythonOpSgx);
  EXPECT_EQ(back.resources.disk_bytes, 42u);
  EXPECT_TRUE(back.filter().allows(sb::Syscall::NetConnect));
  EXPECT_FALSE(back.filter().allows(sb::Syscall::FsRead));
}

TEST(Policy, DeserializeRejectsGarbage) {
  EXPECT_THROW(bc::MiddleboxPolicy::deserialize(bu::Bytes(3)), bu::ParseError);
  bu::Bytes bad = bc::MiddleboxPolicy::permissive().serialize();
  bad[3] = 0xff;  // syscall count corrupted
  EXPECT_THROW(bc::MiddleboxPolicy::deserialize(bad), bu::ParseError);
}

TEST(Message, SerializeRoundTrip) {
  bc::Message m;
  m.type = bc::MsgType::Upload;
  m.container_id = 77;
  m.text = "python";
  m.blob = bu::to_bytes("payload");
  m.blob2 = bu::to_bytes("hello");
  m.token = bu::to_bytes("0123456789abcdef");
  auto back = bc::Message::deserialize(m.serialize());
  EXPECT_EQ(back.type, bc::MsgType::Upload);
  EXPECT_EQ(back.container_id, 77u);
  EXPECT_EQ(back.text, "python");
  EXPECT_EQ(back.blob, m.blob);
  EXPECT_EQ(back.blob2, m.blob2);
  EXPECT_EQ(back.token, m.token);
}

TEST(Message, FramerReassemblesSplits) {
  bc::Message m1;
  m1.type = bc::MsgType::Invoke;
  m1.blob = bu::Bytes(1000, 0x11);
  bc::Message m2;
  m2.type = bc::MsgType::Ok;

  bu::Bytes wire = bc::StreamFramer::frame(m1);
  bu::append(wire, bc::StreamFramer::frame(m2));

  bc::StreamFramer framer;
  std::vector<bc::Message> got;
  // Feed in awkward chunks (like 498-byte cells would).
  std::size_t off = 0;
  while (off < wire.size()) {
    const std::size_t n = std::min<std::size_t>(498, wire.size() - off);
    auto msgs = framer.feed(bu::ByteView(wire.data() + off, n));
    for (auto& msg : msgs) got.push_back(std::move(msg));
    off += n;
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].type, bc::MsgType::Invoke);
  EXPECT_EQ(got[0].blob.size(), 1000u);
  EXPECT_EQ(got[1].type, bc::MsgType::Ok);
}

TEST(Message, FramerHandlesByteAtATime) {
  bc::Message m;
  m.type = bc::MsgType::Output;
  m.blob = bu::to_bytes("tiny");
  bu::Bytes wire = bc::StreamFramer::frame(m);
  bc::StreamFramer framer;
  int count = 0;
  for (std::uint8_t b : wire) {
    auto msgs = framer.feed(bu::ByteView(&b, 1));
    count += static_cast<int>(msgs.size());
  }
  EXPECT_EQ(count, 1);
}

TEST(Message, UploadBodyRoundTrip) {
  bc::UploadBody b;
  b.manifest = bu::to_bytes("m");
  b.source = "def f():\n    pass\n";
  b.native = "loadbalancer";
  b.args = bu::to_bytes("{}");
  auto back = bc::UploadBody::deserialize(b.serialize());
  EXPECT_EQ(back.source, b.source);
  EXPECT_EQ(back.native, "loadbalancer");
  EXPECT_EQ(back.args, b.args);
}

TEST(ParseUrl, Variants) {
  auto u = bc::parse_url("http://93.184.216.34/index.html");
  EXPECT_EQ(u.endpoint.port, 80);
  EXPECT_EQ(u.path, "/index.html");

  auto v = bc::parse_url("http://10.0.0.1:8080");
  EXPECT_EQ(v.endpoint.port, 8080);
  EXPECT_EQ(v.path, "/");

  EXPECT_THROW(bc::parse_url("ftp://1.2.3.4/"), std::invalid_argument);
  EXPECT_THROW(bc::parse_url("http://1.2.3.4:99999/"), std::invalid_argument);
  EXPECT_THROW(bc::parse_url("http://nota.host/"), std::invalid_argument);
}

TEST(NativeRegistry, AddCreateHas) {
  struct Dummy : bc::Function {
    void on_install(bc::HostApi&, bu::ByteView) override {}
    void on_message(bc::HostApi&, bu::ByteView) override {}
  };
  bc::NativeRegistry reg;
  EXPECT_FALSE(reg.has("dummy"));
  reg.add("dummy", [] { return std::make_unique<Dummy>(); });
  EXPECT_TRUE(reg.has("dummy"));
  EXPECT_NE(reg.create("dummy"), nullptr);
  EXPECT_THROW(reg.create("ghost"), std::invalid_argument);
}
