// Unit suite for the log-structured sealed blob store (DESIGN.md §15):
// frame round-trips, the zero-alloc sealer against the reference AEAD,
// torn/corrupt-tail recovery to the longest valid prefix, fail-closed
// replay under the wrong key, compaction, and the cache-tier LRU.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "crypto/poly1305.hpp"
#include "store/crc32.hpp"
#include "store/sealer.hpp"
#include "store/store.hpp"
#include "store/volume.hpp"
#include "util/rng.hpp"

namespace bs = bento::store;
namespace bu = bento::util;
namespace bcr = bento::crypto;

namespace {

bcr::ChaChaKey test_key(std::uint8_t fill) {
  bcr::ChaChaKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(fill + i);
  }
  return key;
}

/// A store over `volume` with the given sealer; replays iff the volume
/// already holds a log.
std::unique_ptr<bs::BlobStore> open_store(bs::Volume& volume,
                                          std::unique_ptr<bs::Sealer> sealer,
                                          bs::StoreOptions opts = {}) {
  auto store = std::make_unique<bs::BlobStore>(volume, std::move(sealer), opts);
  store->replay();
  return store;
}

std::uint32_t load_le32_at(const bu::Bytes& d, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(d[off + i]) << (8 * i);
  return v;
}

std::uint64_t load_le64_at(const bu::Bytes& d, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(d[off + i]) << (8 * i);
  return v;
}

/// Largest seq present in any raw frame header on the volume, including a
/// torn trailing header as long as its seq field (bytes 12..19) survives.
/// Reads the media directly — no CRC checks — because the question it
/// answers is "what could an attacker have snapshotted?".
std::uint64_t max_raw_seq(const bs::Volume& volume) {
  std::uint64_t max_seq = 0;
  for (const bs::Segment& seg : volume.segments()) {
    std::size_t off = 0;
    while (off + 20 <= seg.data.size()) {
      max_seq = std::max(max_seq, load_le64_at(seg.data, off + 12));
      if (off + 24 > seg.data.size()) break;  // torn header: no len field
      const std::uint32_t len = load_le32_at(seg.data, off + 8);
      if (len < 24) break;
      off += len;
    }
  }
  return max_seq;
}

}  // namespace

TEST(Store, Crc32cKnownAnswers) {
  // RFC 3720 appendix B.4 test vector: 32 zero bytes.
  bu::Bytes zeros(32, 0);
  EXPECT_EQ(bs::crc32c(zeros), 0x8a9136aau);
  // "123456789" — the classic check value for CRC-32C.
  const std::string digits = "123456789";
  bu::Bytes d(digits.begin(), digits.end());
  EXPECT_EQ(bs::crc32c(d), 0xe3069283u);
  // Incremental == one-shot.
  std::uint32_t state = bs::crc32c_init();
  state = bs::crc32c_update(state, d.data(), 4);
  state = bs::crc32c_update(state, d.data() + 4, d.size() - 4);
  EXPECT_EQ(bs::crc32c_final(state), 0xe3069283u);
}

TEST(Store, SealerMatchesReferenceAead) {
  // ChaPolySealer::seal_append must be byte-identical to crypto::chapoly_seal
  // — same ciphertext, same tag — for any (seq, aad, plaintext).
  const bcr::ChaChaKey key = test_key(7);
  bs::ChaPolySealer sealer(key);
  bu::Rng rng(3);
  for (const std::size_t n : {0ul, 1ul, 15ul, 16ul, 64ul, 1000ul}) {
    const bu::Bytes plain = rng.bytes(n);
    const bu::Bytes aad = rng.bytes(24);
    const std::uint64_t seq = rng.uniform(1, 1 << 30);
    bu::Bytes out;
    sealer.seal_append(out, seq, aad, plain);
    const bu::Bytes want =
        bcr::chapoly_seal(key, bs::ChaPolySealer::nonce_for(seq), aad, plain);
    EXPECT_EQ(out, want) << "n=" << n;
    ASSERT_EQ(out.size(), plain.size() + sealer.overhead());
    // And the sealer opens its own output.
    const auto opened = sealer.open(seq, aad, out);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(*opened, plain);
  }
}

TEST(Store, PutGetRemoveRoundTrip) {
  bs::Volume volume;
  auto store = open_store(volume, bs::make_chapoly_sealer(test_key(1)));

  bu::Rng rng(5);
  const bu::Bytes a = rng.bytes(500);
  const bu::Bytes b = rng.bytes(5000);
  store->put("/a", a);
  store->put("/dir/b", b);
  EXPECT_EQ(store->live_files(), 2u);
  EXPECT_TRUE(store->contains("/a"));
  EXPECT_EQ(store->size_of("/dir/b"), b.size());
  EXPECT_EQ(store->list(), (std::vector<std::string>{"/a", "/dir/b"}));

  auto got = store->get("/a");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, a);

  // Overwrite supersedes; old record becomes garbage.
  const bu::Bytes a2 = rng.bytes(500);
  store->put("/a", a2);
  EXPECT_EQ(*store->get("/a"), a2);
  EXPECT_GT(store->garbage_bytes(), 0u);

  EXPECT_TRUE(store->remove("/a"));
  EXPECT_FALSE(store->remove("/a"));
  EXPECT_FALSE(store->contains("/a"));
  EXPECT_FALSE(store->get("/a").has_value());
  EXPECT_EQ(store->live_files(), 1u);
}

TEST(Store, ReplayIsDeterministicAndByteIdentical) {
  bs::Volume volume;
  const bcr::ChaChaKey key = test_key(9);
  bcr::Digest before;
  {
    auto store = open_store(volume, bs::make_chapoly_sealer(key));
    bu::Rng rng(8);
    for (int i = 0; i < 40; ++i) {
      store->put("/f" + std::to_string(i % 10), rng.bytes(rng.uniform(1, 3000)));
      if (i % 7 == 0) store->remove("/f" + std::to_string((i + 3) % 10));
    }
    before = store->snapshot_digest();
  }
  // A second store over the same volume replays to the same namespace.
  auto recovered = std::make_unique<bs::BlobStore>(
      volume, bs::make_chapoly_sealer(key), bs::StoreOptions{});
  const bs::ReplayReport report = recovered->replay();
  EXPECT_FALSE(report.torn);
  EXPECT_GT(report.frames, 0u);
  EXPECT_EQ(report.live_files, recovered->live_files());
  EXPECT_EQ(recovered->snapshot_digest(), before);
}

TEST(Store, TornTailTruncatesToLongestValidPrefix) {
  bs::Volume volume;
  bs::StoreOptions opts;
  opts.sync_every_append = false;  // expose an unsynced tail to the crash
  const bcr::ChaChaKey key = test_key(4);
  bu::Rng rng(12);
  bu::Bytes durable_a = rng.bytes(800);
  bu::Bytes durable_b = rng.bytes(800);
  {
    auto store = open_store(volume, bs::make_chapoly_sealer(key), opts);
    store->put("/durable/a", durable_a);
    store->put("/durable/b", durable_b);
    volume.sync();
    store->put("/lost/c", rng.bytes(800));
    store->put("/lost/d", rng.bytes(800));
  }
  // The crash keeps a torn prefix that ends mid-frame of the first unsynced
  // record: no complete record survives past the sync watermark.
  ASSERT_GT(volume.unsynced_bytes(), 40u);
  volume.crash(/*torn_keep_bytes=*/40);

  auto recovered = std::make_unique<bs::BlobStore>(
      volume, bs::make_chapoly_sealer(key), opts);
  const bs::ReplayReport report = recovered->replay();
  EXPECT_TRUE(report.torn);
  EXPECT_GT(report.truncated_bytes, 0u);
  EXPECT_EQ(report.live_files, 2u);
  EXPECT_EQ(*recovered->get("/durable/a"), durable_a);
  EXPECT_EQ(*recovered->get("/durable/b"), durable_b);
  EXPECT_FALSE(recovered->contains("/lost/c"));
  // Replay physically truncated the torn bytes: a third open is clean.
  auto clean = std::make_unique<bs::BlobStore>(
      volume, bs::make_chapoly_sealer(key), opts);
  EXPECT_FALSE(clean->replay().torn);
  EXPECT_EQ(clean->snapshot_digest(), recovered->snapshot_digest());
}

TEST(Store, CorruptedTailRecoversPrefix) {
  bs::Volume volume;
  const bcr::ChaChaKey key = test_key(2);
  bu::Rng rng(13);
  const bu::Bytes keep = rng.bytes(1200);
  {
    auto store = open_store(volume, bs::make_chapoly_sealer(key));
    store->put("/keep", keep);
    store->put("/flip", rng.bytes(1200));
  }
  // Flip a byte inside the last frame's body: its CRC fails, and replay
  // must drop that record (and everything after) rather than trust it.
  volume.corrupt_tail(/*byte_from_end=*/10);
  auto recovered = std::make_unique<bs::BlobStore>(
      volume, bs::make_chapoly_sealer(key), bs::StoreOptions{});
  const bs::ReplayReport report = recovered->replay();
  EXPECT_TRUE(report.torn);
  EXPECT_EQ(report.live_files, 1u);
  EXPECT_EQ(*recovered->get("/keep"), keep);
  EXPECT_FALSE(recovered->contains("/flip"));
}

TEST(Store, WrongKeyFailsClosed) {
  bs::Volume volume;
  {
    auto store = open_store(volume, bs::make_chapoly_sealer(test_key(1)));
    store->put("/secret", bu::to_bytes("sealed under key 1"));
  }
  // A different platform/measurement derives a different key: the frames
  // are CRC-valid, so this is NOT truncation — replay throws.
  auto wrong = std::make_unique<bs::BlobStore>(
      volume, bs::make_chapoly_sealer(test_key(200)), bs::StoreOptions{});
  EXPECT_THROW(wrong->replay(), bs::StoreError);
  // And a plaintext open of a sealed log is rejected before any body is
  // touched (the Meta frame's sealed flag disagrees).
  auto plain = std::make_unique<bs::BlobStore>(volume, bs::make_null_sealer(),
                                               bs::StoreOptions{});
  EXPECT_THROW(plain->replay(), bs::StoreError);
}

TEST(Store, ReplayRequiredBeforeFirstMutation) {
  bs::Volume volume;
  {
    auto store = open_store(volume, bs::make_null_sealer());
    store->put("/x", bu::to_bytes("x"));
  }
  bs::BlobStore unreplayed(volume, bs::make_null_sealer());
  EXPECT_THROW(unreplayed.put("/y", bu::to_bytes("y")), std::logic_error);
}

TEST(Store, CompactionReclaimsGarbageAndPreservesNamespace) {
  bs::Volume volume;
  bs::StoreOptions opts;
  opts.segment_bytes = 4096;  // force several sealed segments
  const bcr::ChaChaKey key = test_key(6);
  auto store = open_store(volume, bs::make_chapoly_sealer(key), opts);

  bu::Rng rng(21);
  for (int round = 0; round < 30; ++round) {
    // The same 5 paths, overwritten every round: most records are garbage.
    for (int f = 0; f < 5; ++f) {
      store->put("/f" + std::to_string(f), rng.bytes(700));
    }
  }
  ASSERT_GT(volume.segments().size(), 2u);
  ASSERT_TRUE(store->wants_compaction());

  const bcr::Digest before = store->snapshot_digest();
  const std::size_t log_before = store->log_bytes();
  store->compact();
  EXPECT_EQ(store->compactions(), 1u);
  EXPECT_LT(store->log_bytes(), log_before);
  EXPECT_EQ(store->snapshot_digest(), before);
  EXPECT_FALSE(store->wants_compaction());

  // The compacted log still replays to the same namespace (bodies were
  // copied verbatim, so the original seq-derived nonces still open).
  auto reopened = std::make_unique<bs::BlobStore>(
      volume, bs::make_chapoly_sealer(key), opts);
  EXPECT_FALSE(reopened->replay().torn);
  EXPECT_EQ(reopened->snapshot_digest(), before);

  // And the store keeps working after compaction.
  store->put("/f0", rng.bytes(700));
  EXPECT_EQ(store->live_files(), 5u);
}

TEST(Store, LruCacheHonoursCeiling) {
  bs::Volume volume;
  bs::StoreOptions opts;
  opts.cache_bytes = 4000;  // room for ~4 of the 1000-byte payloads
  auto store = open_store(volume, bs::make_chapoly_sealer(test_key(3)), opts);

  bu::Rng rng(30);
  std::vector<bu::Bytes> payloads;
  for (int i = 0; i < 8; ++i) {
    payloads.push_back(rng.bytes(1000));
    store->put("/f" + std::to_string(i), payloads.back());
  }
  EXPECT_LE(store->cached_bytes(), opts.cache_bytes);

  // Freshly written entries beyond the ceiling were evicted; reading them
  // unseals (a miss), reading a resident entry does not.
  const std::uint64_t misses0 = store->cache_misses();
  EXPECT_EQ(*store->get("/f0"), payloads[0]);  // evicted long ago: a miss
  EXPECT_GT(store->cache_misses(), misses0);
  const std::uint64_t hits0 = store->cache_hits();
  EXPECT_EQ(*store->get("/f0"), payloads[0]);  // now resident
  EXPECT_GT(store->cache_hits(), hits0);
  EXPECT_LE(store->cached_bytes(), opts.cache_bytes);

  // Every payload round-trips regardless of cache residency.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(*store->get("/f" + std::to_string(i)), payloads[i]);
  }
}

TEST(Store, SeqNeverReusedAfterTornCrashRecovery) {
  // The nonce-reuse guard: records sealed into a tail the crash truncates
  // used (key, seq) pairs an attacker may have snapshotted. Recovery must
  // resume ABOVE every seq ever written — the durable ceiling in the Meta
  // frames — not merely above the surviving prefix's max.
  bs::Volume volume;
  bs::StoreOptions opts;
  opts.sync_every_append = false;
  const bcr::ChaChaKey key = test_key(11);
  bu::Rng rng(41);
  {
    auto store = open_store(volume, bs::make_chapoly_sealer(key), opts);
    store->put("/durable/a", rng.bytes(600));
    store->put("/durable/b", rng.bytes(600));
    volume.sync();
    store->put("/lost/1", rng.bytes(600));
    store->put("/lost/2", rng.bytes(600));
  }
  const std::uint64_t max_written = max_raw_seq(volume);
  ASSERT_GE(max_written, 4u);  // meta + four puts
  volume.crash(/*torn_keep_bytes=*/40);

  auto recovered = std::make_unique<bs::BlobStore>(
      volume, bs::make_chapoly_sealer(key), opts);
  ASSERT_TRUE(recovered->replay().torn);
  const std::size_t replayed_end = volume.segments().back().data.size();
  recovered->put("/fresh", rng.bytes(600));

  // Every frame appended after recovery (reservation Meta included) must
  // carry a seq strictly above anything the pre-crash log ever held.
  const bu::Bytes& active = volume.segments().back().data;
  std::size_t off = replayed_end;
  std::size_t post_frames = 0;
  while (off + 24 <= active.size()) {
    EXPECT_GT(load_le64_at(active, off + 12), max_written);
    const std::uint32_t len = load_le32_at(active, off + 8);
    ASSERT_GE(len, 24u);
    off += len;
    ++post_frames;
  }
  EXPECT_GE(post_frames, 2u);  // fresh reservation Meta, then the record
}

TEST(Store, RepeatedCompactionKeepsLogBounded) {
  // Regression: replace_prefix used to drop segments by id comparison, but
  // a merged segment's fresh id exceeds the active's, so a second compact()
  // (reachable before any new roll on delete-heavy logs) duplicated the
  // previous merged segment and the log grew monotonically.
  bs::Volume volume;
  bs::StoreOptions opts;
  opts.segment_bytes = 4096;
  const bcr::ChaChaKey key = test_key(17);
  auto store = open_store(volume, bs::make_chapoly_sealer(key), opts);

  bu::Rng rng(23);
  for (int round = 0; round < 30; ++round) {
    for (int f = 0; f < 5; ++f) {
      store->put("/f" + std::to_string(f), rng.bytes(700));
    }
  }
  ASSERT_TRUE(store->wants_compaction());
  store->compact();
  const bcr::Digest digest = store->snapshot_digest();
  const std::size_t log_after_first = store->log_bytes();
  ASSERT_EQ(volume.segments().size(), 2u);  // merged + active

  store->compact();
  EXPECT_EQ(volume.segments().size(), 2u);
  EXPECT_LE(store->log_bytes(), log_after_first);
  EXPECT_EQ(store->snapshot_digest(), digest);

  // Still replays clean to the same namespace.
  auto reopened = std::make_unique<bs::BlobStore>(
      volume, bs::make_chapoly_sealer(key), opts);
  EXPECT_FALSE(reopened->replay().torn);
  EXPECT_EQ(reopened->snapshot_digest(), digest);
}

TEST(Store, MidLogShearIsDetectedAndTruncated) {
  // A frame-aligned loss inside a non-active segment leaves every per-frame
  // CRC valid; only the successor head's chained predecessor-length can see
  // the hole. Replay must truncate everything from the hole onward instead
  // of silently recovering a non-prefix state.
  bs::Volume volume;
  bs::StoreOptions opts;
  opts.segment_bytes = 4096;
  const bcr::ChaChaKey key = test_key(14);
  bu::Rng rng(51);
  {
    auto store = open_store(volume, bs::make_chapoly_sealer(key), opts);
    for (int i = 0; i < 12; ++i) {
      store->put("/f" + std::to_string(i), rng.bytes(700));
    }
  }
  ASSERT_GE(volume.segments().size(), 3u);

  // Shear segment 0 at its final frame boundary (drop exactly one frame).
  const bu::Bytes& seg0 = volume.segments()[0].data;
  std::size_t last_start = 0;
  for (std::size_t off = 0; off + 24 <= seg0.size();) {
    const std::uint32_t len = load_le32_at(seg0, off + 8);
    if (len < 24 || off + len > seg0.size()) break;
    last_start = off;
    off += len;
  }
  ASSERT_GT(last_start, 0u);
  volume.shear_segment(0, last_start);

  auto recovered = std::make_unique<bs::BlobStore>(
      volume, bs::make_chapoly_sealer(key), opts);
  const bs::ReplayReport report = recovered->replay();
  EXPECT_TRUE(report.torn);
  EXPECT_GT(report.truncated_bytes, 0u);

  // Exactly the put frames still physically in segment 0 survive; nothing
  // past the hole does (paths are unique, so puts == live files).
  std::size_t surviving_puts = 0;
  const bu::Bytes& sheared = volume.segments()[0].data;
  for (std::size_t off = 0; off + 24 <= sheared.size();) {
    if (sheared[off + 20] == 1) ++surviving_puts;
    off += load_le32_at(sheared, off + 8);
  }
  ASSERT_GT(surviving_puts, 0u);
  ASSERT_LT(surviving_puts, 12u);
  EXPECT_EQ(report.live_files, surviving_puts);
  EXPECT_TRUE(recovered->contains("/f0"));
  EXPECT_FALSE(recovered->contains("/f11"));

  // The truncation is physical: a clean reopen agrees byte for byte.
  auto clean = std::make_unique<bs::BlobStore>(
      volume, bs::make_chapoly_sealer(key), opts);
  EXPECT_FALSE(clean->replay().torn);
  EXPECT_EQ(clean->snapshot_digest(), recovered->snapshot_digest());
}

TEST(Store, SegmentRollSyncsPriorSegments) {
  // create_segment is fsync-before-close: after a roll, only the active
  // segment can hold unsynced bytes, so a crash cannot open a hole behind
  // the active segment.
  bs::Volume volume;
  volume.create_segment(256);
  bu::Rng rng(3);
  volume.append(rng.bytes(100));  // never explicitly synced
  EXPECT_EQ(volume.unsynced_bytes(), 100u);
  volume.create_segment(256);
  EXPECT_EQ(volume.unsynced_bytes(), 0u);
  volume.append(rng.bytes(50));
  volume.crash(/*torn_keep_bytes=*/0);
  ASSERT_EQ(volume.segments().size(), 2u);
  EXPECT_EQ(volume.segments()[0].data.size(), 100u);  // survived the roll
  EXPECT_EQ(volume.segments()[1].data.size(), 0u);    // unsynced tail gone
}

TEST(Store, VolumeManagerCrashIsDeterministic) {
  // Two managers with the same seed and the same write pattern make the
  // same torn-prefix draws — the bit-reproducibility chaos runs rely on.
  auto run = [](std::uint64_t seed) {
    bs::VolumeManager mgr(seed);
    bs::Volume& v = mgr.open("f");
    v.create_segment(1 << 16);
    bu::Rng rng(2);
    v.append(rng.bytes(400));
    v.sync();
    v.append(rng.bytes(300));
    mgr.crash();
    return v.total_bytes();
  };
  EXPECT_EQ(run(77), run(77));
  // Synced bytes always survive.
  EXPECT_GE(run(77), 400u);
}
