// Sandbox: resource accounting, syscall filtering, chroot VFS, netfilter.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sandbox/netfilter.hpp"
#include "sandbox/resources.hpp"
#include "sandbox/syscalls.hpp"
#include "sandbox/vfs.hpp"

namespace sb = bento::sandbox;
namespace bu = bento::util;
namespace bt = bento::tor;

TEST(Resources, MemoryLimitEnforced) {
  sb::ResourceLimits limits;
  limits.memory_bytes = 1000;
  sb::ResourceAccountant acct(limits);
  acct.charge_memory(900);
  EXPECT_EQ(acct.usage().memory_bytes, 900u);
  EXPECT_THROW(acct.charge_memory(1001), sb::ResourceExceeded);
  // Watermark semantics: shrinking works.
  acct.charge_memory(100);
  EXPECT_EQ(acct.usage().memory_bytes, 100u);
}

TEST(Resources, CpuBudgetCumulative) {
  sb::ResourceLimits limits;
  limits.cpu_instructions = 100;
  sb::ResourceAccountant acct(limits);
  for (int i = 0; i < 10; ++i) acct.charge_cpu(10);
  EXPECT_THROW(acct.charge_cpu(1), sb::ResourceExceeded);
}

TEST(Resources, DiskQuotaTracksDeltas) {
  sb::ResourceLimits limits;
  limits.disk_bytes = 100;
  sb::ResourceAccountant acct(limits);
  acct.charge_disk(80);
  acct.charge_disk(-30);
  acct.charge_disk(50);
  EXPECT_EQ(acct.usage().disk_bytes, 100u);
  EXPECT_THROW(acct.charge_disk(1), sb::ResourceExceeded);
}

TEST(Resources, FileAndConnectionCounts) {
  sb::ResourceLimits limits;
  limits.max_open_files = 2;
  limits.max_connections = 1;
  sb::ResourceAccountant acct(limits);
  acct.open_file();
  acct.open_file();
  EXPECT_THROW(acct.open_file(), sb::ResourceExceeded);
  acct.close_file();
  acct.open_file();
  acct.open_connection();
  EXPECT_THROW(acct.open_connection(), sb::ResourceExceeded);
  acct.close_connection();
  acct.open_connection();
}

TEST(Resources, AggregateCapAcrossContainers) {
  // Paper §6.2: a flood of functions must not starve the relay; the
  // aggregate cap fails the *newcomer*, not the host.
  sb::ResourceLimits totals;
  totals.memory_bytes = 1000;
  sb::AggregateAccountant aggregate(totals);

  sb::ResourceLimits per;
  per.memory_bytes = 800;
  sb::ResourceAccountant a(per, &aggregate);
  sb::ResourceAccountant b(per, &aggregate);
  a.charge_memory(600);
  EXPECT_THROW(b.charge_memory(600), sb::ResourceExceeded);
  b.charge_memory(300);
  EXPECT_EQ(aggregate.usage().memory_bytes, 900u);
}

TEST(Resources, DestructionReleasesAggregate) {
  sb::ResourceLimits totals;
  totals.memory_bytes = 1000;
  sb::AggregateAccountant aggregate(totals);
  {
    sb::ResourceAccountant a({}, &aggregate);
    a.charge_memory(700);
  }
  EXPECT_EQ(aggregate.usage().memory_bytes, 0u);
  sb::ResourceAccountant b({}, &aggregate);
  b.charge_memory(900);  // fits again
}

TEST(Syscalls, NamesRoundTrip) {
  for (std::size_t i = 0; i < sb::kSyscallCount; ++i) {
    const auto call = static_cast<sb::Syscall>(i);
    EXPECT_EQ(sb::syscall_from_string(sb::to_string(call)), call);
  }
  EXPECT_THROW(sb::syscall_from_string("rm_rf"), std::invalid_argument);
}

TEST(Syscalls, FilterAllowsAndDenies) {
  sb::SyscallFilter filter({sb::Syscall::FsRead, sb::Syscall::Clock});
  EXPECT_TRUE(filter.allows(sb::Syscall::FsRead));
  EXPECT_FALSE(filter.allows(sb::Syscall::NetConnect));
  filter.check(sb::Syscall::Clock);
  EXPECT_THROW(filter.check(sb::Syscall::Fork), sb::SyscallDenied);
  EXPECT_EQ(filter.violations(), 1u);
}

TEST(Syscalls, IntersectionIsTheEnforcedSet) {
  // Paper §5.5: the sandbox permits only manifest ∩ node policy.
  sb::SyscallFilter node_policy(
      {sb::Syscall::FsRead, sb::Syscall::FsWrite, sb::Syscall::NetConnect});
  sb::SyscallFilter manifest(
      {sb::Syscall::FsRead, sb::Syscall::TorCircuit, sb::Syscall::NetConnect});
  auto enforced = node_policy.intersect(manifest);
  EXPECT_TRUE(enforced.allows(sb::Syscall::FsRead));
  EXPECT_TRUE(enforced.allows(sb::Syscall::NetConnect));
  EXPECT_FALSE(enforced.allows(sb::Syscall::FsWrite));    // manifest didn't ask
  EXPECT_FALSE(enforced.allows(sb::Syscall::TorCircuit)); // node refuses
}

TEST(Syscalls, AllowAllAndDenyAll) {
  EXPECT_TRUE(sb::SyscallFilter::allow_all().allows(sb::Syscall::Exec));
  EXPECT_FALSE(sb::SyscallFilter::deny_all().allows(sb::Syscall::Clock));
}

TEST(Vfs, ChrootNormalization) {
  EXPECT_EQ(sb::chroot_normalize("/a/b/c"), "a/b/c");
  EXPECT_EQ(sb::chroot_normalize("a//b/./c/"), "a/b/c");
  EXPECT_EQ(sb::chroot_normalize("../../../etc/passwd"), "etc/passwd");
  EXPECT_EQ(sb::chroot_normalize("a/../b"), "b");
  EXPECT_EQ(sb::chroot_normalize("a/b/../../.."), "");
  EXPECT_EQ(sb::chroot_normalize(""), "");
}

TEST(Vfs, EscapeAttemptStaysInside) {
  sb::ResourceLimits limits;
  sb::ResourceAccountant acct(limits);
  sb::Vfs vfs(std::make_unique<sb::MemoryBackend>(), acct);
  vfs.write("secret.txt", bu::to_bytes("inside"));
  // "../secret.txt" normalizes to the same chrooted path.
  auto got = vfs.read("/../secret.txt");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(bu::to_string(*got), "inside");
}

TEST(Vfs, ReadWriteRemoveAccounting) {
  sb::ResourceLimits limits;
  limits.disk_bytes = 100;
  sb::ResourceAccountant acct(limits);
  sb::Vfs vfs(std::make_unique<sb::MemoryBackend>(), acct);

  vfs.write("a", bu::Bytes(60, 1));
  EXPECT_EQ(acct.usage().disk_bytes, 60u);
  vfs.write("a", bu::Bytes(20, 2));  // overwrite shrinks usage
  EXPECT_EQ(acct.usage().disk_bytes, 20u);
  vfs.write("b", bu::Bytes(80, 3));
  EXPECT_THROW(vfs.write("c", bu::Bytes(10, 4)), sb::ResourceExceeded);
  EXPECT_FALSE(vfs.exists("c"));  // failed write left no trace
  EXPECT_TRUE(vfs.remove("b"));
  EXPECT_EQ(acct.usage().disk_bytes, 20u);
  EXPECT_EQ(vfs.list().size(), 1u);
  EXPECT_EQ(vfs.file_count(), 1u);
}

TEST(Vfs, UnwritablePathsRejectedUniformlyAcrossBackends) {
  // "/" normalizes to the empty key, which the blob store refuses; the Vfs
  // must reject it up front so guests see identical behavior on the memory
  // and persistent mounts, and the accountant is never charged for it.
  sb::ResourceLimits limits;
  limits.disk_bytes = 100;

  sb::ResourceAccountant mem_acct(limits);
  sb::Vfs mem_vfs(std::make_unique<sb::MemoryBackend>(), mem_acct);
  EXPECT_THROW(mem_vfs.write("/", bu::to_bytes("x")), std::invalid_argument);
  EXPECT_EQ(mem_acct.usage().disk_bytes, 0u);
  EXPECT_EQ(mem_vfs.file_count(), 0u);

  sb::ResourceAccountant store_acct(limits);
  bento::store::Volume volume;
  bento::store::BlobStore blob(volume, bento::store::make_null_sealer());
  blob.replay();
  sb::Vfs store_vfs(std::make_unique<sb::StoreBackend>(&blob), store_acct);
  EXPECT_THROW(store_vfs.write("/", bu::to_bytes("x")), std::invalid_argument);
  EXPECT_THROW(store_vfs.write("a/../..", bu::to_bytes("x")),
               std::invalid_argument);
  EXPECT_EQ(store_acct.usage().disk_bytes, 0u);
  EXPECT_EQ(blob.live_files(), 0u);
}

TEST(Vfs, FailedBackendPutRollsBackDiskCharge) {
  // If the backend throws after the charge, the accountant must be restored
  // — a guest must not be able to leak quota via failed writes.
  class ThrowingBackend final : public sb::VfsBackend {
   public:
    void put(const std::string&, bu::ByteView) override {
      throw std::runtime_error("media error");
    }
    std::optional<bu::Bytes> get(const std::string&) const override {
      return std::nullopt;
    }
    bool erase(const std::string&) override { return false; }
    std::vector<std::string> keys() const override { return {}; }
  };
  sb::ResourceLimits limits;
  limits.disk_bytes = 100;
  sb::ResourceAccountant acct(limits);
  sb::Vfs vfs(std::make_unique<ThrowingBackend>(), acct);
  EXPECT_THROW(vfs.write("a", bu::Bytes(60, 1)), std::runtime_error);
  EXPECT_EQ(acct.usage().disk_bytes, 0u);
  EXPECT_FALSE(vfs.exists("a"));
  // The full budget is still available afterwards.
  acct.charge_disk(100);
  EXPECT_EQ(acct.usage().disk_bytes, 100u);
}

TEST(Vfs, MissingFileBehaviour) {
  sb::ResourceLimits limits;
  sb::ResourceAccountant acct(limits);
  sb::Vfs vfs(std::make_unique<sb::MemoryBackend>(), acct);
  EXPECT_FALSE(vfs.read("nope").has_value());
  EXPECT_FALSE(vfs.remove("nope"));
  EXPECT_FALSE(vfs.exists("nope"));
}

TEST(NetFilter, CompiledFromExitPolicy) {
  auto policy = bt::ExitPolicy::parse("accept *:80\naccept *:443\nreject *:*");
  auto filter = sb::NetFilter::from_exit_policy(policy);
  EXPECT_TRUE(filter.allows({bt::parse_addr("1.2.3.4"), 443}));
  EXPECT_FALSE(filter.allows({bt::parse_addr("1.2.3.4"), 25}));
  EXPECT_TRUE(filter.any_access());
}

TEST(NetFilter, NonExitRelayDeniesDirectNetwork) {
  // Paper §5.3: a non-exit relay's functions are "strictly limited to
  // communicating via Tor circuits".
  auto filter = sb::NetFilter::from_exit_policy(bt::ExitPolicy::reject_all());
  EXPECT_FALSE(filter.any_access());
  EXPECT_FALSE(filter.check({bt::parse_addr("8.8.8.8"), 53}));
  EXPECT_EQ(filter.rejected_count(), 1u);
}

TEST(NetFilter, DenyAllCountsRejects) {
  auto filter = sb::NetFilter::deny_all();
  filter.check({1, 1});
  filter.check({2, 2});
  EXPECT_EQ(filter.rejected_count(), 2u);
}
