// BentoScript: lexer, parser, interpreter, stdlib, budgets.
#include <gtest/gtest.h>

#include "script/interp.hpp"
#include "script/parser.hpp"

namespace sc = bento::script;
namespace bu = bento::util;

namespace {
/// Runs a program and returns interp for inspection.
std::unique_ptr<sc::Interpreter> run_program(const std::string& src,
                                             sc::InterpreterOptions opts = {}) {
  auto interp = std::make_unique<sc::Interpreter>(sc::parse(src), std::move(opts));
  sc::install_stdlib(*interp);
  interp->run();
  return interp;
}

/// Evaluates `expr` by assigning it to a global and reading it back.
sc::Value eval_expr(const std::string& expr) {
  auto interp = run_program("result = " + expr + "\n");
  return interp->global("result");
}
}  // namespace

// ---- lexer ----

TEST(ScriptLexer, TokenizesBasics) {
  auto tokens = sc::tokenize("x = 1 + 2\n");
  ASSERT_GE(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].type, sc::TokenType::Identifier);
  EXPECT_EQ(tokens[0].text, "x");
  EXPECT_EQ(tokens[1].type, sc::TokenType::Assign);
  EXPECT_EQ(tokens[2].int_value, 1);
  EXPECT_EQ(tokens[3].type, sc::TokenType::Plus);
}

TEST(ScriptLexer, IndentDedent) {
  auto tokens = sc::tokenize("if x:\n    y = 1\nz = 2\n");
  int indents = 0, dedents = 0;
  for (const auto& t : tokens) {
    indents += t.type == sc::TokenType::Indent;
    dedents += t.type == sc::TokenType::Dedent;
  }
  EXPECT_EQ(indents, 1);
  EXPECT_EQ(dedents, 1);
}

TEST(ScriptLexer, CommentsAndBlankLines) {
  auto tokens = sc::tokenize("# comment\n\nx = 1  # trailing\n");
  EXPECT_EQ(tokens[0].type, sc::TokenType::Identifier);
}

TEST(ScriptLexer, StringEscapes) {
  auto tokens = sc::tokenize("s = \"a\\nb\\t\\\"c\\\"\"\n");
  EXPECT_EQ(tokens[2].text, "a\nb\t\"c\"");
}

TEST(ScriptLexer, Errors) {
  EXPECT_THROW(sc::tokenize("s = \"unterminated\n"), sc::SyntaxError);
  EXPECT_THROW(sc::tokenize("x = 1 @ 2\n"), sc::SyntaxError);
  EXPECT_THROW(sc::tokenize("if x:\n    a = 1\n  b = 2\n"), sc::SyntaxError);
}

TEST(ScriptLexer, MultilineParens) {
  auto interp = run_program("x = (1 +\n     2 +\n     3)\n");
  EXPECT_EQ(interp->global("x").as_int(), 6);
}

// ---- expressions ----

TEST(ScriptExpr, Arithmetic) {
  EXPECT_EQ(eval_expr("2 + 3 * 4").as_int(), 14);
  EXPECT_EQ(eval_expr("(2 + 3) * 4").as_int(), 20);
  EXPECT_EQ(eval_expr("10 / 3").as_int(), 3);
  EXPECT_EQ(eval_expr("-10 / 3").as_int(), -4);  // floor division
  EXPECT_EQ(eval_expr("10 % 3").as_int(), 1);
  EXPECT_EQ(eval_expr("-1 % 5").as_int(), 4);    // Python-style modulo
  EXPECT_DOUBLE_EQ(eval_expr("1.5 + 2").as_float(), 3.5);
  EXPECT_DOUBLE_EQ(eval_expr("7.0 / 2").as_float(), 3.5);
  EXPECT_EQ(eval_expr("-(3)").as_int(), -3);
}

TEST(ScriptExpr, DivisionByZeroThrows) {
  EXPECT_THROW(eval_expr("1 / 0"), sc::ScriptError);
  EXPECT_THROW(eval_expr("1 % 0"), sc::ScriptError);
}

TEST(ScriptExpr, Comparisons) {
  EXPECT_TRUE(eval_expr("1 < 2").as_bool());
  EXPECT_TRUE(eval_expr("2 <= 2").as_bool());
  EXPECT_FALSE(eval_expr("3 < 2").as_bool());
  EXPECT_TRUE(eval_expr("\"abc\" < \"abd\"").as_bool());
  EXPECT_TRUE(eval_expr("1 == 1.0").as_bool());
  EXPECT_TRUE(eval_expr("\"a\" != \"b\"").as_bool());
  EXPECT_TRUE(eval_expr("[1, 2] == [1, 2]").as_bool());
  EXPECT_FALSE(eval_expr("[1, 2] == [2, 1]").as_bool());
}

TEST(ScriptExpr, LogicShortCircuits) {
  // `or` returns first truthy operand; undefined call must not run.
  auto interp = run_program(R"(
called = [0]
def boom():
    called[0] = 1
    return True
x = 1 or boom()
y = 0 and boom()
)");
  EXPECT_EQ(interp->global("x").as_int(), 1);
  EXPECT_EQ(interp->global("y").as_int(), 0);
  EXPECT_EQ(interp->global("called").as_list()[0].as_int(), 0);
}

TEST(ScriptExpr, StringOps) {
  EXPECT_EQ(eval_expr("\"ab\" + \"cd\"").as_str(), "abcd");
  EXPECT_EQ(eval_expr("\"ab\" * 3").as_str(), "ababab");
  EXPECT_TRUE(eval_expr("\"ell\" in \"hello\"").as_bool());
  EXPECT_EQ(eval_expr("\"hello\"[1]").as_str(), "e");
  EXPECT_EQ(eval_expr("\"hello\"[-1]").as_str(), "o");
  EXPECT_EQ(eval_expr("\"a,b,c\".split(\",\")").as_list().size(), 3u);
  EXPECT_EQ(eval_expr("\"HeLLo\".lower()").as_str(), "hello");
  EXPECT_EQ(eval_expr("\"hello\".upper()").as_str(), "HELLO");
  EXPECT_TRUE(eval_expr("\"hello\".startswith(\"he\")").as_bool());
  EXPECT_EQ(eval_expr("\"hello\".find(\"ll\")").as_int(), 2);
  EXPECT_EQ(eval_expr("\"hello\".find(\"xyz\")").as_int(), -1);
}

TEST(ScriptExpr, ListsAndDicts) {
  EXPECT_EQ(eval_expr("[1, 2, 3][1]").as_int(), 2);
  EXPECT_EQ(eval_expr("[1, 2, 3][-1]").as_int(), 3);
  EXPECT_EQ(eval_expr("[1] + [2, 3]").as_list().size(), 3u);
  EXPECT_TRUE(eval_expr("2 in [1, 2, 3]").as_bool());
  EXPECT_EQ(eval_expr("{\"a\": 1, \"b\": 2}[\"b\"]").as_int(), 2);
  EXPECT_TRUE(eval_expr("\"a\" in {\"a\": 1}").as_bool());
  EXPECT_EQ(eval_expr("{\"a\": 7}.get(\"a\")").as_int(), 7);
  EXPECT_EQ(eval_expr("{}.get(\"x\", 42)").as_int(), 42);
  EXPECT_TRUE(eval_expr("{}.get(\"x\")").is_none());
}

TEST(ScriptExpr, IndexErrors) {
  EXPECT_THROW(eval_expr("[1][5]"), sc::ScriptError);
  EXPECT_THROW(eval_expr("{\"a\": 1}[\"b\"]"), sc::ScriptError);
  EXPECT_THROW(eval_expr("5[0]"), sc::ScriptError);
}

TEST(ScriptExpr, StdlibBuiltins) {
  EXPECT_EQ(eval_expr("len(\"hello\")").as_int(), 5);
  EXPECT_EQ(eval_expr("len([1, 2])").as_int(), 2);
  EXPECT_EQ(eval_expr("str(42)").as_str(), "42");
  EXPECT_EQ(eval_expr("int(\"17\")").as_int(), 17);
  EXPECT_EQ(eval_expr("int(3.9)").as_int(), 3);
  EXPECT_EQ(eval_expr("len(range(10))").as_int(), 10);
  EXPECT_EQ(eval_expr("range(2, 5)[0]").as_int(), 2);
  EXPECT_EQ(eval_expr("min([4, 2, 9])").as_int(), 2);
  EXPECT_EQ(eval_expr("max(4, 2, 9)").as_int(), 9);
  EXPECT_EQ(eval_expr("abs(-5)").as_int(), 5);
  EXPECT_EQ(eval_expr("sorted([3, 1, 2])[0]").as_int(), 1);
  EXPECT_EQ(eval_expr("len(bytes(10))").as_int(), 10);
  EXPECT_EQ(eval_expr("bytes(\"ab\")[0]").as_int(), 97);
  EXPECT_EQ(eval_expr("str(bytes(\"hi\"))").as_str(), "hi");
}

// ---- statements ----

TEST(ScriptStmt, IfElifElse) {
  auto interp = run_program(R"(
def grade(x):
    if x >= 90:
        return "A"
    elif x >= 80:
        return "B"
    elif x >= 70:
        return "C"
    else:
        return "F"
a = grade(95)
b = grade(85)
c = grade(71)
f = grade(0)
)");
  EXPECT_EQ(interp->global("a").as_str(), "A");
  EXPECT_EQ(interp->global("b").as_str(), "B");
  EXPECT_EQ(interp->global("c").as_str(), "C");
  EXPECT_EQ(interp->global("f").as_str(), "F");
}

TEST(ScriptStmt, WhileWithBreakContinue) {
  auto interp = run_program(R"(
total = 0
i = 0
while True:
    i += 1
    if i > 100:
        break
    if i % 2 == 0:
        continue
    total += i
)");
  EXPECT_EQ(interp->global("total").as_int(), 2500);  // sum of odd 1..99
}

TEST(ScriptStmt, ForLoop) {
  auto interp = run_program(R"(
squares = []
for i in range(5):
    squares.append(i * i)
total = 0
for s in squares:
    total += s
chars = ""
for c in "abc":
    chars = c + chars
)");
  EXPECT_EQ(interp->global("total").as_int(), 30);
  EXPECT_EQ(interp->global("chars").as_str(), "cba");
}

TEST(ScriptStmt, ForOverDictKeys) {
  auto interp = run_program(R"(
d = {"x": 1, "y": 2}
keys = []
for k in d:
    keys.append(k)
keys = sorted(keys)
)");
  auto keys = interp->global("keys").as_list();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0].as_str(), "x");
}

TEST(ScriptStmt, FunctionsAndRecursion) {
  auto interp = run_program(R"(
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
result = fib(15)
)");
  EXPECT_EQ(interp->global("result").as_int(), 610);
}

TEST(ScriptStmt, LocalScopeShadowsGlobal) {
  auto interp = run_program(R"(
x = 1
def f():
    x = 99
    return x
y = f()
)");
  EXPECT_EQ(interp->global("x").as_int(), 1);
  EXPECT_EQ(interp->global("y").as_int(), 99);
}

TEST(ScriptStmt, SharedMutableState) {
  // Dicts/lists have reference semantics: handlers can keep state in a
  // global dict without rebinding (how Dropbox keeps its store).
  auto interp = run_program(R"(
state = {"count": 0}
def bump():
    state["count"] += 1
bump()
bump()
bump()
)");
  EXPECT_EQ(interp->global("state").as_dict()["count"].as_int(), 3);
}

TEST(ScriptStmt, IndexAssignment) {
  auto interp = run_program(R"(
xs = [1, 2, 3]
xs[1] = 20
xs[-1] = 30
d = {}
d["k"] = "v"
)");
  EXPECT_EQ(interp->global("xs").as_list()[1].as_int(), 20);
  EXPECT_EQ(interp->global("xs").as_list()[2].as_int(), 30);
  EXPECT_EQ(interp->global("d").as_dict()["k"].as_str(), "v");
}

TEST(ScriptStmt, ListMethods) {
  auto interp = run_program(R"(
xs = []
xs.append(1)
xs.append(2)
xs.append(3)
last = xs.pop()
first = xs.pop(0)
)");
  EXPECT_EQ(interp->global("last").as_int(), 3);
  EXPECT_EQ(interp->global("first").as_int(), 1);
  EXPECT_EQ(interp->global("xs").as_list().size(), 1u);
}

// ---- host bindings & errors ----

TEST(ScriptHost, NativeBindingsAndModules) {
  auto interp = std::make_unique<sc::Interpreter>(sc::parse(R"(
result = math.double(21)
)"));
  sc::install_stdlib(*interp);
  sc::Dict math;
  math["double"] = sc::Value::native([](sc::Interpreter&, std::vector<sc::Value>& args) {
    return sc::Value::integer(args[0].as_int() * 2);
  });
  interp->bind("math", sc::Value::dict(std::move(math)));
  interp->run();
  EXPECT_EQ(interp->global("result").as_int(), 42);
}

TEST(ScriptHost, CallScriptFunctionFromHost) {
  auto interp = run_program(R"(
def on_message(msg):
    return "echo: " + msg
)");
  auto out = interp->call("on_message", {sc::Value::str("hi")});
  EXPECT_EQ(out.as_str(), "echo: hi");
  EXPECT_TRUE(interp->has_function("on_message"));
  EXPECT_FALSE(interp->has_function("nonexistent"));
  EXPECT_THROW(interp->call("nonexistent", {}), sc::ScriptError);
}

TEST(ScriptHost, ArityMismatch) {
  auto interp = run_program("def f(a, b):\n    return a\n");
  EXPECT_THROW(interp->call("f", {sc::Value::integer(1)}), sc::ScriptError);
}

TEST(ScriptHost, PrintHook) {
  std::vector<std::string> lines;
  sc::InterpreterOptions opts;
  opts.print_hook = [&](const std::string& s) { lines.push_back(s); };
  run_program("print(\"hello\", 42)\n", std::move(opts));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "hello 42");
}

TEST(ScriptErrors, UndefinedName) {
  EXPECT_THROW(run_program("x = nope\n"), sc::ScriptError);
}

TEST(ScriptErrors, TypeErrorsSurface) {
  EXPECT_THROW(eval_expr("1 + \"a\""), sc::ScriptError);
  EXPECT_THROW(eval_expr("-\"a\""), sc::ScriptError);
  EXPECT_THROW(run_program("x = 5\nx()\n"), sc::ScriptError);
}

TEST(ScriptErrors, ParserRejectsMalformed) {
  EXPECT_THROW(sc::parse("def f(:\n    pass\n"), sc::SyntaxError);
  EXPECT_THROW(sc::parse("if x\n    pass\n"), sc::SyntaxError);
  EXPECT_THROW(sc::parse("1 + 2 = 3\n"), sc::SyntaxError);
  EXPECT_THROW(sc::parse("if x:\npass\n"), sc::SyntaxError);  // missing indent
  EXPECT_THROW(sc::parse("x = [1, 2\n"), sc::SyntaxError);
}

TEST(ScriptBudget, StepLimitEnforced) {
  sc::InterpreterOptions opts;
  opts.max_steps = 10'000;
  EXPECT_THROW(run_program("while True:\n    pass\n", std::move(opts)),
               sc::ScriptError);
}

TEST(ScriptBudget, StepHookReceivesBatches) {
  sc::InterpreterOptions opts;
  std::uint64_t reported = 0;
  opts.step_hook = [&](std::uint64_t n) { reported += n; };
  auto interp = run_program("x = 0\nfor i in range(1000):\n    x += i\n",
                            std::move(opts));
  EXPECT_GT(reported, 1000u);
  EXPECT_LE(reported, interp->steps());
}

TEST(ScriptBudget, StepHookCanAbort) {
  sc::InterpreterOptions opts;
  opts.step_hook = [](std::uint64_t) { throw std::runtime_error("cpu quota"); };
  EXPECT_THROW(run_program("while True:\n    pass\n", std::move(opts)),
               std::runtime_error);
}

TEST(ScriptBudget, RecursionLimit) {
  sc::InterpreterOptions opts;
  opts.max_call_depth = 16;
  EXPECT_THROW(run_program("def f(n):\n    return f(n + 1)\nf(0)\n", std::move(opts)),
               sc::ScriptError);
}

TEST(ScriptBudget, MemoryHookSeesHeapGrowth) {
  sc::InterpreterOptions opts;
  std::size_t peak = 0;
  opts.memory_hook = [&](std::size_t bytes) { peak = std::max(peak, bytes); };
  run_program(R"(
data = []
for i in range(2000):
    data.append("0123456789")
)",
              std::move(opts));
  EXPECT_GT(peak, 20'000u);
}

// The paper's Appendix A Browser function, transliterated: the API surface
// (requests/zlib/os/api) is bound by the host, logic is unchanged.
TEST(ScriptPaper, AppendixABrowserShape) {
  auto interp = std::make_unique<sc::Interpreter>(sc::parse(R"(
def browser(url, padding):
    body = requests.get(url)
    compressed = zlib.compress(body)
    final = compressed
    if padding - len(final) > 0:
        final = final + os.urandom(padding - len(final))
    else:
        final = final + os.urandom((len(final) + padding) % padding)
    api.send(final)
)"));
  sc::install_stdlib(*interp);

  auto sent = std::make_shared<bu::Bytes>();
  sc::Dict requests_mod, zlib_mod, os_mod, api_mod;
  requests_mod["get"] = sc::Value::native([](sc::Interpreter&, std::vector<sc::Value>& a) {
    return sc::Value::bytes(bu::to_bytes("<html>" + a[0].as_str() + "</html>"));
  });
  zlib_mod["compress"] = sc::Value::native([](sc::Interpreter&, std::vector<sc::Value>& a) {
    return a[0];  // identity stand-in for this test
  });
  os_mod["urandom"] = sc::Value::native([](sc::Interpreter&, std::vector<sc::Value>& a) {
    return sc::Value::bytes(bu::Bytes(static_cast<std::size_t>(a[0].as_int()), 0xaa));
  });
  api_mod["send"] = sc::Value::native([sent](sc::Interpreter&, std::vector<sc::Value>& a) {
    *sent = a[0].as_bytes();
    return sc::Value::none();
  });
  interp->bind("requests", sc::Value::dict(std::move(requests_mod)));
  interp->bind("zlib", sc::Value::dict(std::move(zlib_mod)));
  interp->bind("os", sc::Value::dict(std::move(os_mod)));
  interp->bind("api", sc::Value::dict(std::move(api_mod)));

  interp->call("browser", {sc::Value::str("http://x.test/"), sc::Value::integer(1000)});
  EXPECT_EQ(sent->size(), 1000u);  // padded to exactly the requested size
}
