#include <gtest/gtest.h>

#include <vector>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/transport.hpp"
#include "util/bytes.hpp"

namespace bs = bento::sim;
namespace bu = bento::util;
using bu::Duration;
using bu::Time;

TEST(Simulator, OrdersEventsByTime) {
  bs::Simulator sim(1);
  std::vector<int> order;
  sim.at(Time::from_seconds(2), [&] { order.push_back(2); });
  sim.at(Time::from_seconds(1), [&] { order.push_back(1); });
  sim.at(Time::from_seconds(3), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().seconds(), 3.0);
}

TEST(Simulator, FifoTieBreakAtSameTime) {
  bs::Simulator sim(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(Time::from_seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NestedScheduling) {
  bs::Simulator sim(1);
  int fired = 0;
  sim.after(Duration::seconds(1), [&] {
    sim.after(Duration::seconds(1), [&] { fired = 1; });
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().seconds(), 2.0);
}

TEST(Simulator, PastEventsClampToNow) {
  bs::Simulator sim(1);
  sim.after(Duration::seconds(5), [] {});
  sim.run();
  bool fired = false;
  sim.at(Time::from_seconds(1), [&] { fired = true; });  // in the past
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now().seconds(), 5.0);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  bs::Simulator sim(1);
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.at(Time::from_seconds(i), [&] { ++count; });
  }
  sim.run_until(Time::from_seconds(5.5));
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now().seconds(), 5.5);
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulator, RunWithLimit) {
  bs::Simulator sim(1);
  int count = 0;
  for (int i = 0; i < 100; ++i) sim.after(Duration::millis(i), [&] { ++count; });
  sim.run(10);
  EXPECT_EQ(count, 10);
}

// ---- Event-queue determinism & callback storage ----

namespace {
// Replays a seed-driven workload exercising every scheduling shape the
// event queue supports: same-timestamp ties, past-scheduled events, nested
// scheduling, rng-driven delays, and captures spanning inline storage, the
// slab pool, and the oversized fallback. Returns a fingerprint of the
// exact execution order.
struct RunTrace {
  std::uint64_t events = 0;
  std::int64_t final_clock_us = 0;
  std::uint64_t order_hash = 0;
  bool operator==(const RunTrace&) const = default;
};

RunTrace run_determinism_workload(std::uint64_t seed) {
  bs::Simulator sim(seed);
  RunTrace t;
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  // A burst of same-timestamp ties (FIFO order must hold).
  for (int i = 0; i < 32; ++i) {
    sim.at(Time::from_micros(5000), [&, i] {
             mix(static_cast<std::uint64_t>(i));
             mix(static_cast<std::uint64_t>(sim.now().micros()));
           });
  }
  // Rng-driven delays with nested re-scheduling and occasional past events.
  for (int i = 0; i < 200; ++i) {
    const auto delay =
        Duration::micros(static_cast<std::int64_t>(sim.rng().uniform(0, 20000)));
    sim.after(delay, [&, i] {
      mix(0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(i));
      mix(static_cast<std::uint64_t>(sim.now().micros()));
      if (i % 3 == 0) {
        // Past timestamp: clamps to now, keeps FIFO order among clamped.
        sim.at(Time::from_micros(0), [&] { mix(0xabcdULL); });
      }
      if (i % 5 == 0) {
        // Oversized capture: exercises the slab pool / heap fallback.
        std::array<std::uint64_t, 32> big{};
        big[0] = static_cast<std::uint64_t>(i);
        sim.after(Duration::micros(100), [&, big] { mix(big[0]); });
      }
    });
  }
  sim.run();
  t.events = sim.events_executed();
  t.final_clock_us = sim.now().micros();
  t.order_hash = h;
  return t;
}
}  // namespace

TEST(Simulator, IdenticalSeedsReplayIdenticalEventSequences) {
  const RunTrace a = run_determinism_workload(42);
  const RunTrace b = run_determinism_workload(42);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.final_clock_us, b.final_clock_us);
  EXPECT_EQ(a.order_hash, b.order_hash);
  EXPECT_GT(a.events, 200u);  // the workload actually ran

  // And a different seed genuinely changes the schedule (the hash is not
  // insensitive to ordering).
  const RunTrace c = run_determinism_workload(43);
  EXPECT_NE(a.order_hash, c.order_hash);
}

TEST(Simulator, LargeCapturesExecuteCorrectly) {
  bs::Simulator sim(1);
  // Inline (small), pooled-slab (mid), and oversized (plain heap) captures.
  int small_sum = 0;
  std::array<int, 20> mid{};
  std::array<int, 100> big{};
  mid.fill(2);
  big.fill(3);
  int got_mid = 0;
  int got_big = 0;
  sim.after(Duration::micros(1), [&small_sum] { small_sum = 1; });
  sim.after(Duration::micros(2), [&got_mid, mid] {
    for (int v : mid) got_mid += v;
  });
  sim.after(Duration::micros(3), [&got_big, big] {
    for (int v : big) got_big += v;
  });
  sim.run();
  EXPECT_EQ(small_sum, 1);
  EXPECT_EQ(got_mid, 40);
  EXPECT_EQ(got_big, 300);
}

TEST(Simulator, SlabPoolRecyclesAcrossManyEvents) {
  bs::Simulator sim(1);
  // Thousands of slab-sized captures; with pooling this stays warm and
  // correct. (The allocation count itself is asserted in bench/datapath.)
  std::uint64_t sum = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) {
      std::array<std::uint64_t, 16> payload{};
      payload[15] = static_cast<std::uint64_t>(round * 20 + i);
      sim.after(Duration::micros(round * 10 + i), [&sum, payload] { sum += payload[15]; });
    }
  }
  sim.run();
  EXPECT_EQ(sum, 999ull * 1000 / 2);
}

namespace {
class Recorder : public bs::MessageHandler {
 public:
  explicit Recorder(bs::Simulator& sim) : sim_(sim) {}
  void on_message(bs::NodeId from, bu::Bytes data) override {
    arrivals.push_back({sim_.now(), from, std::move(data)});
  }
  struct Arrival {
    Time when;
    bs::NodeId from;
    bu::Bytes data;
  };
  std::vector<Arrival> arrivals;

 private:
  bs::Simulator& sim_;
};
}  // namespace

TEST(Network, DeliversMessageWithLatencyAndSerialization) {
  bs::Simulator sim(1);
  bs::Network net(sim);
  Recorder rx(sim);
  // 1 MB/s links so serialization delay is visible.
  auto a = net.add_node({"a", 1e6, 1e6});
  auto b = net.add_node({"b", 1e6, 1e6}, &rx);
  net.set_latency(a, b, Duration::millis(50));

  net.send(a, b, bu::Bytes(10000, 0x42));
  sim.run();

  ASSERT_EQ(rx.arrivals.size(), 1u);
  EXPECT_EQ(rx.arrivals[0].from, a);
  EXPECT_EQ(rx.arrivals[0].data.size(), 10000u);
  // ~10ms uplink + 50ms latency + ~10ms downlink.
  const double t = rx.arrivals[0].when.seconds();
  EXPECT_NEAR(t, 0.070, 0.002);
  EXPECT_EQ(net.stats(b).bytes_received, 10000u);
  EXPECT_EQ(net.stats(a).messages_sent, 1u);
}

TEST(Network, IdleDelayMatchesObservedDelay) {
  bs::Simulator sim(1);
  bs::Network net(sim);
  Recorder rx(sim);
  auto a = net.add_node({"a", 2e6, 2e6});
  auto b = net.add_node({"b", 5e6, 5e6}, &rx);
  net.set_latency(a, b, Duration::millis(30));
  net.send(a, b, bu::Bytes(5000, 1));
  sim.run();
  ASSERT_EQ(rx.arrivals.size(), 1u);
  EXPECT_NEAR(rx.arrivals[0].when.seconds(),
              net.idle_delay(a, b, 5000).to_seconds(), 1e-6);
}

TEST(Network, MessagesOnSameFlowStayOrdered) {
  bs::Simulator sim(1);
  bs::Network net(sim);
  Recorder rx(sim);
  auto a = net.add_node({"a", 1e6, 1e6});
  auto b = net.add_node({"b", 1e6, 1e6}, &rx);
  for (std::uint8_t i = 0; i < 50; ++i) net.send(a, b, bu::Bytes{i});
  sim.run();
  ASSERT_EQ(rx.arrivals.size(), 50u);
  for (std::uint8_t i = 0; i < 50; ++i) EXPECT_EQ(rx.arrivals[i].data[0], i);
}

TEST(Network, UplinkSharedFairlyBetweenTwoReceivers) {
  bs::Simulator sim(1);
  bs::Network net(sim);
  Recorder rx1(sim), rx2(sim);
  auto server = net.add_node({"server", 1e6, 1e6});
  auto c1 = net.add_node({"c1", 1e7, 1e7}, &rx1);
  auto c2 = net.add_node({"c2", 1e7, 1e7}, &rx2);
  net.set_latency(server, c1, Duration::millis(10));
  net.set_latency(server, c2, Duration::millis(10));

  // 100 x 10KB to each client: 2 MB total through a 1 MB/s uplink.
  for (int i = 0; i < 100; ++i) {
    net.send(server, c1, bu::Bytes(10000, 1));
    net.send(server, c2, bu::Bytes(10000, 2));
  }
  sim.run();
  ASSERT_EQ(rx1.arrivals.size(), 100u);
  ASSERT_EQ(rx2.arrivals.size(), 100u);
  // Both finish at ~2s (fair share), not one at 1s and the other at 2s.
  const double t1 = rx1.arrivals.back().when.seconds();
  const double t2 = rx2.arrivals.back().when.seconds();
  EXPECT_NEAR(t1, t2, 0.05);
  EXPECT_GT(t1, 1.9);
  // And interleaved mid-flight: client 1's 50th arrival near t/2.
  EXPECT_NEAR(rx1.arrivals[49].when.seconds(), t1 / 2, 0.1);
}

TEST(Network, FairShareRecoversWhenFlowEnds) {
  bs::Simulator sim(1);
  bs::Network net(sim);
  Recorder rx1(sim), rx2(sim);
  auto server = net.add_node({"server", 1e6, 1e6});
  auto c1 = net.add_node({"c1", 1e7, 1e7}, &rx1);
  auto c2 = net.add_node({"c2", 1e7, 1e7}, &rx2);
  // c1 gets 1MB, c2 gets 2MB. After c1's flow drains (~2s), c2 should
  // speed up and finish around 3s, not 4s.
  for (int i = 0; i < 100; ++i) net.send(server, c1, bu::Bytes(10000, 1));
  for (int i = 0; i < 200; ++i) net.send(server, c2, bu::Bytes(10000, 2));
  sim.run();
  EXPECT_NEAR(rx1.arrivals.back().when.seconds(), 2.0, 0.15);
  EXPECT_NEAR(rx2.arrivals.back().when.seconds(), 3.0, 0.15);
}

TEST(Network, UnknownNodeThrows) {
  bs::Simulator sim(1);
  bs::Network net(sim);
  auto a = net.add_node({"a", 1e6, 1e6});
  EXPECT_THROW(net.send(a, 99, bu::Bytes{1}), std::out_of_range);
  EXPECT_THROW(net.stats(99), std::out_of_range);
  EXPECT_THROW(net.add_node({"bad", 0.0, 1.0}), std::invalid_argument);
}

TEST(Network, DefaultLatencyApplies) {
  bs::Simulator sim(1);
  bs::Network net(sim);
  net.set_default_latency(Duration::millis(123));
  auto a = net.add_node({"a", 1e9, 1e9});
  auto b = net.add_node({"b", 1e9, 1e9});
  EXPECT_EQ(net.latency(a, b).to_millis(), 123);
}

TEST(Transport, SmallTransferIsRttBound) {
  // 5 KB at 10 MB/s: transfer time negligible, so halving RTT halves delay.
  auto d1 = bs::tcp_fetch_delay(5000, Duration::millis(100), 10e6);
  auto d2 = bs::tcp_fetch_delay(5000, Duration::millis(50), 10e6);
  EXPECT_NEAR(d1.to_seconds() / d2.to_seconds(), 2.0, 0.05);
}

TEST(Transport, LargeTransferIsBandwidthBound) {
  auto d = bs::tcp_fetch_delay(100'000'000, Duration::millis(50), 10e6);
  EXPECT_NEAR(d.to_seconds(), 10.0, 1.0);
}

TEST(Transport, SlowStartRounds) {
  bs::TcpModelParams p;
  EXPECT_EQ(bs::slow_start_rounds(1000, p), 0);
  EXPECT_EQ(bs::slow_start_rounds(p.init_cwnd_bytes, p), 0);
  EXPECT_EQ(bs::slow_start_rounds(p.init_cwnd_bytes + 1, p), 1);
  EXPECT_GT(bs::slow_start_rounds(1'000'000, p), 3);
  EXPECT_LT(bs::slow_start_rounds(1'000'000'000ULL, p), 41);
}

TEST(Transport, AblationDisablesSlowStart) {
  bs::TcpModelParams with{};
  bs::TcpModelParams without{};
  without.model_slow_start = false;
  auto dw = bs::tcp_fetch_delay(1'000'000, Duration::millis(100), 10e6, with);
  auto dwo = bs::tcp_fetch_delay(1'000'000, Duration::millis(100), 10e6, without);
  EXPECT_GT(dw.to_seconds(), dwo.to_seconds());
}

// Property sweep: delay is monotone in size and RTT.
class TransportSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TransportSweep, MonotoneInSizeAndRtt) {
  const std::size_t size = GetParam();
  auto base = bs::tcp_fetch_delay(size, Duration::millis(80), 5e6);
  auto bigger = bs::tcp_fetch_delay(size * 2 + 1, Duration::millis(80), 5e6);
  auto slower = bs::tcp_fetch_delay(size, Duration::millis(160), 5e6);
  EXPECT_GE(bigger.count_micros(), base.count_micros());
  EXPECT_GT(slower.count_micros(), base.count_micros());
}

INSTANTIATE_TEST_SUITE_P(Sizes, TransportSweep,
                         ::testing::Values(100, 1000, 14600, 100000, 5000000));
