// Observability layer: metrics registry semantics (bucket edges, interning,
// reset, disabled no-op), flight-recorder ring behaviour (wraparound keeps
// the newest window, exports are time-ordered), logger satellites
// (parse_log_level, log_enabled, sim-time stamping hook) and the
// determinism regression: a fixed-seed e2e scenario traced twice exports
// byte-identical JSONL.
#include <gtest/gtest.h>

#include <sstream>

#include "core/world.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "tor/testbed.hpp"
#include "util/log.hpp"
#include "util/simclock.hpp"

namespace bo = bento::obs;
namespace bt = bento::tor;
namespace bu = bento::util;
namespace bs = bento::sim;

namespace {

// Deterministic fake clock for ring tests: advances by explicit assignment.
std::int64_t g_fake_now_us = 0;
std::int64_t fake_clock(const void*) { return g_fake_now_us; }

struct FakeClockScope {
  FakeClockScope() { bu::install_sim_clock(&fake_clock, &g_fake_now_us); }
  ~FakeClockScope() { bu::uninstall_sim_clock(&g_fake_now_us); }
};

}  // namespace

TEST(Metrics, HistogramBucketEdges) {
  const std::int64_t bounds[] = {10, 20, 30};
  bo::Histogram h = bo::registry().histogram("test.edges", bounds);
  // Underflow, interior, exact edges, overflow. An exact edge value
  // bounds[i] belongs to bucket i+1 (buckets are lower-inclusive).
  h.record(-5);    // bucket 0: (-inf, 10)
  h.record(9);     // bucket 0
  h.record(10);    // bucket 1: [10, 20)
  h.record(19);    // bucket 1
  h.record(20);    // bucket 2: [20, 30)
  h.record(29);    // bucket 2
  h.record(30);    // bucket 3: [30, +inf)
  h.record(1000);  // bucket 3

  const bo::HistogramCell* cell = h.cell();
  ASSERT_NE(cell, nullptr);
  ASSERT_EQ(cell->buckets.size(), 4u);
  EXPECT_EQ(cell->buckets[0], 2u);
  EXPECT_EQ(cell->buckets[1], 2u);
  EXPECT_EQ(cell->buckets[2], 2u);
  EXPECT_EQ(cell->buckets[3], 2u);
  EXPECT_EQ(cell->count, 8u);
  EXPECT_EQ(cell->min, -5);
  EXPECT_EQ(cell->max, 1000);
  EXPECT_EQ(cell->sum, -5 + 9 + 10 + 19 + 20 + 29 + 30 + 1000);
}

TEST(Metrics, HistogramBoundsValidated) {
  EXPECT_THROW(bo::registry().histogram("test.bad_empty", std::span<const std::int64_t>{}),
               std::invalid_argument);
  const std::int64_t unsorted[] = {10, 10, 20};
  EXPECT_THROW(bo::registry().histogram("test.bad_unsorted", unsorted),
               std::invalid_argument);
}

TEST(Metrics, InterningReturnsSameCell) {
  bo::Counter a = bo::registry().counter("test.interned");
  bo::Counter b = bo::registry().counter("test.interned");
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(a.value(), 7u);
  EXPECT_EQ(b.value(), 7u);
  // Re-registering a histogram keeps the original bounds.
  const std::int64_t first[] = {5};
  const std::int64_t second[] = {1, 2, 3};
  bo::Histogram h1 = bo::registry().histogram("test.sticky_bounds", first);
  bo::Histogram h2 = bo::registry().histogram("test.sticky_bounds", second);
  ASSERT_NE(h2.cell(), nullptr);
  EXPECT_EQ(h2.cell()->bounds.size(), 1u);
  EXPECT_EQ(h1.cell(), h2.cell());
}

TEST(Metrics, DisabledIsNoOp) {
  bo::Counter c = bo::registry().counter("test.disabled");
  bo::Gauge g = bo::registry().gauge("test.disabled_gauge");
  bo::set_metrics_enabled(false);
  c.inc(100);
  g.set(42);
  bo::set_metrics_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  c.inc(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST(Metrics, ResetZeroesInPlaceAndKeepsHandles) {
  bo::Counter c = bo::registry().counter("test.reset");
  const std::int64_t bounds[] = {10};
  bo::Histogram h = bo::registry().histogram("test.reset_hist", bounds);
  c.inc(5);
  h.record(3);
  bo::registry().reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.inc(2);  // handle survives the reset
  EXPECT_EQ(c.value(), 2u);
}

TEST(Metrics, GaugeHighWater) {
  bo::Gauge g = bo::registry().gauge("test.high_water");
  g.set(3);
  g.set(9);
  g.set(4);
  EXPECT_EQ(g.value(), 4);
  EXPECT_EQ(g.high_water(), 9);
}

TEST(Metrics, SnapshotDumpContainsRegisteredNames) {
  bo::registry().counter("test.snapshot_counter").inc();
  const bo::Snapshot snap = bo::registry().snapshot();
  const std::string text = snap.to_string();
  EXPECT_NE(text.find("test.snapshot_counter"), std::string::npos);
}

TEST(Trace, RingWraparoundKeepsNewest) {
  FakeClockScope clock;
  bo::Recorder rec;
  rec.enable(8);
  for (std::uint32_t i = 0; i < 20; ++i) {
    g_fake_now_us = 100 * i;
    rec.record(bo::Ev::CellSend, i, i * 2);
  }
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.overwritten(), 12u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first export of the newest window: a = 12..19.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 12u + i);
    EXPECT_EQ(events[i].ts_us, 100 * (12 + static_cast<std::int64_t>(i)));
  }
}

TEST(Trace, ExportsAreTimeOrderedAfterWrap) {
  FakeClockScope clock;
  bo::Recorder rec;
  rec.enable(4);
  for (std::uint32_t i = 0; i < 11; ++i) {
    g_fake_now_us = 7 * i;
    rec.record(bo::Ev::SimDispatch, i);
  }
  std::ostringstream os;
  rec.export_jsonl(os);
  const std::string jsonl = os.str();
  // Timestamps in export order must be monotone non-decreasing.
  std::int64_t last = -1;
  std::size_t lines = 0;
  std::istringstream in(jsonl);
  for (std::string line; std::getline(in, line);) {
    ++lines;
    const auto pos = line.find("\"ts\":");
    ASSERT_NE(pos, std::string::npos) << line;
    const std::int64_t ts = std::stoll(line.substr(pos + 5));
    EXPECT_GE(ts, last);
    last = ts;
  }
  EXPECT_EQ(lines, 4u);
}

TEST(Trace, MaskFiltersKinds) {
  FakeClockScope clock;
  bo::Recorder rec;
  rec.enable(16);
  rec.set_mask(bo::Recorder::mask_all() & ~bo::Recorder::mask_of(bo::Ev::SimDispatch));
  rec.record(bo::Ev::SimDispatch, 1);
  rec.record(bo::Ev::CellSend, 2);
  EXPECT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.events()[0].kind, bo::Ev::CellSend);
}

TEST(Trace, DisabledRecorderIsNoOp) {
  bo::Recorder rec;
  rec.record(bo::Ev::CellSend, 1);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);
}

TEST(Trace, ChromeExportIsWellFormed) {
  FakeClockScope clock;
  g_fake_now_us = 1234;
  bo::Recorder rec;
  rec.enable(16);
  rec.record(bo::Ev::CircBuilt, 7, 3);
  rec.record(bo::Ev::FnInvoke, 1, 42);
  std::ostringstream os;
  rec.export_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"circuit.built\""), std::string::npos);
  EXPECT_NE(json.find("\"fn.invoke\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1234"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

namespace {

// Span tests drive the process-global recorder (span events always go
// there); this scope arms it and guarantees cleanup.
struct SpanRecorderScope {
  explicit SpanRecorderScope(std::size_t capacity = 256) {
    bo::recorder().enable(capacity);
    bo::reset_spans();
  }
  ~SpanRecorderScope() {
    bo::recorder().disable();
    bo::reset_spans();
  }
};

std::vector<bo::TraceEvent> span_events() {
  std::vector<bo::TraceEvent> out;
  for (const bo::TraceEvent& e : bo::recorder().events()) {
    if (e.kind == bo::Ev::SpanBegin || e.kind == bo::Ev::SpanEnd ||
        e.kind == bo::Ev::SpanNote) {
      out.push_back(e);
    }
  }
  return out;
}

}  // namespace

TEST(Span, RootAndChildRecordBeginEndWithParentLink) {
  FakeClockScope clock;
  SpanRecorderScope rec;
  g_fake_now_us = 10;
  {
    bo::SpanScope root(bo::SpanScope::kRoot, bo::Stage::ClientInvoke);
    g_fake_now_us = 20;
    {
      bo::SpanScope child(bo::Stage::RelayForward, /*ref=*/7);
      g_fake_now_us = 30;
    }
    g_fake_now_us = 40;
  }
  const auto events = span_events();
  // root begin, child begin, child ref note, child end, root end.
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].kind, bo::Ev::SpanBegin);
  EXPECT_EQ(events[0].a, 1u);  // first span id after reset
  EXPECT_EQ(events[0].b >> 32, 0u);  // no parent
  EXPECT_EQ(events[0].b & 0xffffffffu,
            static_cast<std::uint64_t>(bo::Stage::ClientInvoke));
  EXPECT_EQ(events[1].kind, bo::Ev::SpanBegin);
  EXPECT_EQ(events[1].a, 2u);
  EXPECT_EQ(events[1].b >> 32, 1u);  // parented to the root
  EXPECT_EQ(events[1].b & 0xffffffffu,
            static_cast<std::uint64_t>(bo::Stage::RelayForward));
  EXPECT_EQ(events[2].kind, bo::Ev::SpanNote);
  EXPECT_EQ(events[2].b >> 32, bo::kNoteRef);
  EXPECT_EQ(events[2].b & 0xffffffffu, 7u);
  EXPECT_EQ(events[3].kind, bo::Ev::SpanEnd);
  EXPECT_EQ(events[3].a, 2u);
  EXPECT_EQ(events[3].ts_us, 30);
  EXPECT_EQ(events[4].kind, bo::Ev::SpanEnd);
  EXPECT_EQ(events[4].a, 1u);
  EXPECT_EQ(events[4].ts_us, 40);
}

TEST(Span, ChildScopeInertWithoutActiveParent) {
  FakeClockScope clock;
  SpanRecorderScope rec;
  {
    bo::SpanScope orphan(bo::Stage::RelayForward);  // no active request
  }
  EXPECT_TRUE(span_events().empty());
  EXPECT_FALSE(bo::current_span().active());
}

TEST(Span, RootScopeInertWhenRecorderDisabled) {
  bo::recorder().disable();
  bo::reset_spans();
  {
    bo::SpanScope root(bo::SpanScope::kRoot, bo::Stage::ClientConnect);
  }
  EXPECT_FALSE(bo::current_span().active());
}

TEST(Span, DetachDefersEndToExplicitCall) {
  FakeClockScope clock;
  SpanRecorderScope rec;
  std::uint32_t id = 0;
  g_fake_now_us = 5;
  {
    bo::SpanScope root(bo::SpanScope::kRoot, bo::Stage::ClientUpload);
    id = root.detach();
  }
  ASSERT_NE(id, 0u);
  auto events = span_events();
  ASSERT_EQ(events.size(), 1u);  // begin only: the scope exit did not end it
  EXPECT_EQ(events[0].kind, bo::Ev::SpanBegin);
  // The async completion lands later and closes the span as a failure.
  g_fake_now_us = 55;
  bo::end_span(id, bo::Stage::ClientUpload, /*ok=*/false);
  events = span_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].kind, bo::Ev::SpanEnd);
  EXPECT_EQ(events[1].a, id);
  EXPECT_EQ(events[1].ts_us, 55);
  EXPECT_EQ(events[1].flags & 1, 0u);  // ok=false
  // span.end carries the stage redundantly for wraparound attribution.
  EXPECT_EQ(events[1].b & 0xffffffffu,
            static_cast<std::uint64_t>(bo::Stage::ClientUpload));
}

TEST(Span, IdsRestartEachRecorderGeneration) {
  FakeClockScope clock;
  std::uint32_t first_run = 0;
  std::uint32_t second_run = 0;
  {
    SpanRecorderScope rec;
    bo::SpanScope a(bo::SpanScope::kRoot, bo::Stage::ClientInvoke);
    bo::SpanScope b(bo::Stage::RelayForward);
    first_run = a.detach();
  }
  {
    SpanRecorderScope rec;  // re-enable bumps the recorder generation
    bo::SpanScope a(bo::SpanScope::kRoot, bo::Stage::ClientInvoke);
    second_run = a.detach();
  }
  bo::recorder().disable();
  EXPECT_EQ(first_run, 1u);
  EXPECT_EQ(second_run, 1u);  // same ids for the same call sequence
}

TEST(Span, EndSurvivesRingWraparoundWithStageAttribution) {
  FakeClockScope clock;
  SpanRecorderScope rec(4);  // tiny ring: begins will be overwritten
  bo::SpanScope root(bo::SpanScope::kRoot, bo::Stage::ClientInvoke);
  const std::uint32_t id = root.detach();
  for (std::uint32_t i = 0; i < 64; ++i) {
    bo::trace(bo::Ev::CellSend, i, 0);  // flood: evicts the SpanBegin
  }
  g_fake_now_us = 99;
  bo::end_span(id, bo::Stage::ClientInvoke, /*ok=*/true);
  const auto events = bo::recorder().events();
  ASSERT_FALSE(events.empty());
  const bo::TraceEvent& last = events.back();
  EXPECT_EQ(last.kind, bo::Ev::SpanEnd);
  EXPECT_EQ(last.a, id);
  // Even with the begin gone, the end still names its stage.
  EXPECT_EQ(last.b & 0xffffffffu,
            static_cast<std::uint64_t>(bo::Stage::ClientInvoke));
  bool begin_survived = false;
  for (const auto& e : events) {
    if (e.kind == bo::Ev::SpanBegin) begin_survived = true;
  }
  EXPECT_FALSE(begin_survived);
}

TEST(Span, NamesCompleteForEveryStageAndEvKind) {
  EXPECT_TRUE(bo::stage_names_complete());
  EXPECT_TRUE(bo::ev_names_complete());
}

TEST(Log, ParseLogLevel) {
  using bu::LogLevel;
  EXPECT_EQ(bu::parse_log_level("trace"), LogLevel::Trace);
  EXPECT_EQ(bu::parse_log_level("DEBUG"), LogLevel::Debug);
  EXPECT_EQ(bu::parse_log_level("Info"), LogLevel::Info);
  EXPECT_EQ(bu::parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(bu::parse_log_level("warning"), LogLevel::Warn);
  EXPECT_EQ(bu::parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(bu::parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(bu::parse_log_level("3"), LogLevel::Warn);
  EXPECT_EQ(bu::parse_log_level(nullptr), std::nullopt);
  EXPECT_EQ(bu::parse_log_level(""), std::nullopt);
  EXPECT_EQ(bu::parse_log_level("bogus"), std::nullopt);
  EXPECT_EQ(bu::parse_log_level("7"), std::nullopt);
}

TEST(Log, EnabledPredicateTracksThreshold) {
  const bu::LogLevel saved = bu::log_level();
  bu::set_log_level(bu::LogLevel::Info);
  if (bu::log_level() == bu::LogLevel::Info) {  // env override may pin it
    EXPECT_TRUE(bu::log_enabled(bu::LogLevel::Warn));
    EXPECT_TRUE(bu::log_enabled(bu::LogLevel::Info));
    EXPECT_FALSE(bu::log_enabled(bu::LogLevel::Debug));
  }
  bu::set_log_level(saved);
}

TEST(SimClock, SimulatorInstallsAndRemovesClock) {
  {
    bs::Simulator sim;
    ASSERT_TRUE(bu::sim_clock_installed());
    EXPECT_EQ(bu::sim_now_micros(), 0);
    sim.after(bu::Duration::millis(5), [] {});
    sim.run();
    EXPECT_EQ(bu::sim_now_micros(), 5000);
  }
  EXPECT_FALSE(bu::sim_clock_installed());
  EXPECT_EQ(bu::sim_now_micros(), -1);
}

namespace {

bt::Endpoint web_endpoint() { return {bt::parse_addr("93.184.216.34"), 80}; }

// One fixed-seed fetch scenario with tracing on; returns the JSONL export.
std::string traced_fetch_jsonl() {
  bo::recorder().enable(std::size_t{1} << 14);
  std::string out;
  {
    bt::Testbed bed;  // fixed default seed
    bed.add_web_server(web_endpoint().addr,
                       [](const std::string&) -> std::optional<bu::Bytes> {
                         return bu::Bytes(40'000, 'x');
                       });
    bed.finalize();
    auto client = bed.make_client("alice");
    bool done = false;
    bt::PathConstraints constraints;
    constraints.exit_to = web_endpoint();
    client->build_circuit(constraints, [&](bt::CircuitOrigin* circ) {
      ASSERT_NE(circ, nullptr);
      bt::Stream::Callbacks cbs;
      cbs.on_end = [&done] { done = true; };
      bt::Stream* stream = circ->open_stream(web_endpoint(), std::move(cbs));
      stream->set_on_connected([stream] { stream->send(bu::to_bytes("GET /\n")); });
    });
    bed.run();
    EXPECT_TRUE(done);
    std::ostringstream os;
    bo::recorder().export_jsonl(os);
    out = os.str();
  }
  bo::recorder().disable();
  return out;
}

}  // namespace

TEST(Determinism, TracedRunsExportByteIdenticalJsonl) {
  const std::string first = traced_fetch_jsonl();
  const std::string second = traced_fetch_jsonl();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // Sanity: the trace actually saw the tor layer, not just sim dispatches.
  EXPECT_NE(first.find("\"ev\":\"circuit.built\""), std::string::npos);
  EXPECT_NE(first.find("\"ev\":\"stream.ttfb\""), std::string::npos);
}

TEST(World, SnapshotStatsHasScopedSections) {
  bento::core::BentoWorldOptions options;
  options.testbed.guards = 2;
  options.testbed.middles = 2;
  options.testbed.exits = 2;
  bento::core::BentoWorld world(options);
  world.start();
  world.run_for(bu::Duration::seconds(1));
  const bo::Snapshot snap = world.snapshot_stats();
  const std::string text = snap.to_string();
  EXPECT_NE(text.find("bento servers"), std::string::npos);
  EXPECT_NE(text.find("network nodes"), std::string::npos);
  EXPECT_NE(text.find("sim.events"), std::string::npos);
}
