// Golden-diagnostic tests for the bentolint rule engine (DESIGN.md §10).
//
// Each fixture in tests/lint_fixtures/ marks the lines that must fire with
// a trailing `expect(BLxxx)` comment; the harness analyzes the fixture under
// a *virtual* repo path (the path decides which rules apply — src/ turns on
// BL101 everywhere, src/sim//src/core turn on BL105) and asserts the
// diagnostic set equals the marker set exactly: positives fire, suppressed
// and clean sections stay silent.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bentolint/analyzer.hpp"

namespace bl = bento::lint;

namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(BENTO_LINT_FIXTURES) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string read_repo_source(const std::string& rel) {
  const std::string path = std::string(BENTO_LINT_REPO_ROOT) + "/" + rel;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing source " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// "BL104@17" — rule plus line, the unit both sides of the comparison use.
std::vector<std::string> markers_of(const std::string& src) {
  std::vector<std::string> out;
  int line = 1;
  std::size_t start = 0;
  while (start <= src.size()) {
    std::size_t end = src.find('\n', start);
    if (end == std::string::npos) end = src.size();
    const std::string text = src.substr(start, end - start);
    std::size_t pos = 0;
    while ((pos = text.find("expect(BL", pos)) != std::string::npos) {
      const std::size_t rule_start = pos + std::string("expect(").size();
      const std::size_t close = text.find(')', rule_start);
      if (close != std::string::npos) {
        out.push_back(text.substr(rule_start, close - rule_start) + "@" +
                      std::to_string(line));
      }
      pos = rule_start;
    }
    start = end + 1;
    ++line;
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> fired(const std::vector<bl::Diagnostic>& diags) {
  std::vector<std::string> out;
  for (const bl::Diagnostic& d : diags) {
    out.push_back(d.rule + "@" + std::to_string(d.line));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (const std::string& s : v) {
    if (!out.empty()) out += ", ";
    out += s;
  }
  return out.empty() ? "(none)" : out;
}

// The golden check: diagnostics == markers, nothing more, nothing less.
void check_fixture(const std::string& name, const std::string& virtual_path) {
  const std::string src = read_fixture(name);
  ASSERT_FALSE(src.empty());
  const auto diags = bl::analyze_source(virtual_path, src);
  EXPECT_EQ(join(fired(diags)), join(markers_of(src)))
      << name << " analyzed as " << virtual_path;
}

}  // namespace

TEST(BentoLint, BL100SuppressionNeedsRuleAndReason) {
  check_fixture("bl100_bare_allow.cpp", "src/fixture.cpp");
}

TEST(BentoLint, BL101WallClockInDeterministicTree) {
  check_fixture("bl101_wallclock.cpp", "src/sim/fixture.cpp");
}

TEST(BentoLint, BL101AnnotationGatesToolsScope) {
  check_fixture("bl101_det_annotation.cpp", "tools/fixture.cpp");
}

TEST(BentoLint, BL102HotPathAllocations) {
  check_fixture("bl102_hot_alloc.cpp", "src/crypto/fixture.cpp");
}

TEST(BentoLint, BL102ProfilerWindowClosePath) {
  // The shard profiler's window-close hook is BENTO_HOT (DESIGN.md §13);
  // this fixture proves the rule fires if dynamic storage ever creeps into
  // that path — which is why the committed baseline stays empty.
  check_fixture("bl102_profiler_window.cpp", "src/obs/fixture.cpp");
}

TEST(BentoLint, BL103SharedSelfCapture) {
  check_fixture("bl103_self_capture.cpp", "src/core/fixture.cpp");
}

TEST(BentoLint, BL104UnorderedIterationIntoTrace) {
  check_fixture("bl104_unordered_trace.cpp", "src/obs/fixture.cpp");
}

TEST(BentoLint, BL105ConcurrencyInventoryInSimCore) {
  check_fixture("bl105_concurrency.cpp", "src/sim/fixture.cpp");
}

TEST(BentoLint, BL105SilentOutsideSimCore) {
  // Same bytes, different tree position: the inventory only covers
  // src/sim + src/core ahead of the sharded-simulator refactor.
  const std::string src = read_fixture("bl105_concurrency.cpp");
  EXPECT_TRUE(bl::analyze_source("src/tor/fixture.cpp", src).empty());
  EXPECT_TRUE(bl::analyze_source("tools/fixture.cpp", src).empty());
}

TEST(BentoLint, BL106BannedCStringFunctions) {
  check_fixture("bl106_banned.cpp", "tools/fixture.cpp");
}

TEST(BentoLint, BL107HeaderPragmaOnce) {
  check_fixture("bl107_missing_pragma.hpp", "src/util/fixture.hpp");
  check_fixture("bl107_allowed.hpp", "src/util/fixture.hpp");
  check_fixture("bl107_clean.hpp", "src/util/fixture.hpp");
  // A .cpp without #pragma once is fine — the rule is header-only.
  EXPECT_TRUE(
      bl::analyze_source("src/x.cpp", "int main() { return 0; }\n").empty());
}

TEST(BentoLint, BL108IncludeHygiene) {
  check_fixture("bl108_includes.cpp", "src/fixture.cpp");
}

TEST(BentoLint, BL109StoreFramingInvariant) {
  check_fixture("bl109_framing.cpp", "src/store/fixture.cpp");
}

TEST(BentoLint, BL109SilentOutsideStore) {
  // Same bytes, different tree position: the framing invariant only binds
  // the store subsystem, where write_frame is the durable-commit primitive.
  const std::string src = read_fixture("bl109_framing.cpp");
  EXPECT_TRUE(bl::analyze_source("src/core/fixture.cpp", src).empty());
  EXPECT_TRUE(bl::analyze_source("tools/fixture.cpp", src).empty());
}

TEST(BentoLint, BL109RealStoreLogIsClean) {
  // The shipped store log is the reason the rule exists: its append path
  // must lint clean, and stripping the crc32 computation out of the framed
  // append must fail against an empty baseline.
  const std::string real = read_repo_source("src/store/store.cpp");
  ASSERT_NE(real.find("BENTO_FRAMED"), std::string::npos)
      << "framing annotations missing from store.cpp";
  const auto clean = bl::analyze_source("src/store/store.cpp", real);
  EXPECT_TRUE(clean.empty()) << "expected a clean store, got: "
                             << join(fired(clean));

  const std::string seeded =
      real +
      "\nnamespace { BENTO_FRAMED void lint_probe(Volume& v, "
      "const util::Bytes& f) { write_frame(v, f, true); } }\n";
  const auto diags = bl::analyze_source("src/store/store.cpp", seeded);
  ASSERT_EQ(diags.size(), 1u) << join(fired(diags));
  EXPECT_EQ(diags[0].rule, "BL109");
}

TEST(BentoLint, JsonOutputIsByteStable) {
  // Same inputs, two runs, byte-identical JSON — the property CI relies on
  // to diff analyzer output across machines.
  std::vector<bl::SourceFile> files;
  for (const char* name :
       {"bl101_wallclock.cpp", "bl102_hot_alloc.cpp", "bl103_self_capture.cpp",
        "bl104_unordered_trace.cpp", "bl105_concurrency.cpp"}) {
    files.push_back({std::string("src/sim/") + name, read_fixture(name)});
  }
  const std::string a = bl::to_json(bl::analyze_files(files));
  const std::string b = bl::to_json(bl::analyze_files(files));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"counts\""), std::string::npos);
  EXPECT_NE(a.find("\"BL102\""), std::string::npos);
  // Diagnostics arrive pre-sorted by (file, line, col, rule).
  const auto diags = bl::analyze_files(files);
  EXPECT_TRUE(std::is_sorted(
      diags.begin(), diags.end(),
      [](const bl::Diagnostic& x, const bl::Diagnostic& y) {
        return std::tie(x.file, x.line, x.col, x.rule) <
               std::tie(y.file, y.line, y.col, y.rule);
      }));
}

TEST(BentoLint, SeededViolationInRealHotPathFails) {
  // The annotations in the real tree are load-bearing: take the actual
  // ChaCha20 kernel (clean today), seed one allocation into a BENTO_HOT
  // region, and the lint must fail with BL102 against an empty baseline.
  const std::string real = read_repo_source("src/crypto/chacha20.cpp");
  ASSERT_NE(real.find("BENTO_HOT"), std::string::npos)
      << "hot-path annotations missing from chacha20.cpp";
  const auto clean = bl::analyze_source("src/crypto/chacha20.cpp", real);
  EXPECT_TRUE(clean.empty()) << "expected a clean tree, got: "
                             << join(fired(clean));

  const std::string seeded =
      real +
      "\nBENTO_HOT void lint_probe() {"
      " auto leak = std::make_unique<int>(1); (void)leak; }\n";
  const auto diags = bl::analyze_source("src/crypto/chacha20.cpp", seeded);
  ASSERT_EQ(diags.size(), 1u) << join(fired(diags));
  EXPECT_EQ(diags[0].rule, "BL102");

  // Enforce mode gates on diagnostics minus baseline: an empty baseline
  // (the committed one) leaves the seeded violation standing...
  EXPECT_EQ(bl::subtract_baseline(diags, {}).size(), 1u);
  // ...and a --fix-baseline round trip accepts exactly it.
  std::ostringstream os;
  bl::write_baseline(os, diags);
  std::istringstream is(os.str());
  EXPECT_TRUE(bl::subtract_baseline(diags, bl::load_baseline(is)).empty());
}

TEST(BentoLint, FingerprintsSurviveLineChurn) {
  // Moving a violation down the file must not change its identity —
  // baselines key on (rule, file, line text, ordinal), not line numbers.
  const std::string body =
      "BENTO_HOT void probe() { auto x = std::make_unique<int>(1); }\n";
  const auto a = bl::analyze_source("src/x.cpp", body);
  const auto b = bl::analyze_source("src/x.cpp", "\n\n// moved\n" + body);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_NE(a[0].line, b[0].line);
  EXPECT_EQ(a[0].fingerprint, b[0].fingerprint);
  // A second copy of the same line is a distinct diagnostic (ordinal).
  const auto two = bl::analyze_source("src/x.cpp", body + body);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_NE(two[0].fingerprint, two[1].fingerprint);
}
