#include <gtest/gtest.h>

#include "tor/address.hpp"
#include "tor/cell.hpp"
#include "tor/exitpolicy.hpp"
#include "tor/flow.hpp"
#include "tor/wire.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace bt = bento::tor;
namespace bu = bento::util;

TEST(Address, ParseFormatRoundTrip) {
  EXPECT_EQ(bt::format_addr(bt::parse_addr("10.1.2.3")), "10.1.2.3");
  EXPECT_EQ(bt::parse_addr("0.0.0.0"), 0u);
  EXPECT_EQ(bt::parse_addr("255.255.255.255"), 0xffffffffu);
  EXPECT_EQ(bt::parse_addr("1.0.0.0"), 0x01000000u);
}

TEST(Address, ParseRejectsBad) {
  EXPECT_THROW(bt::parse_addr("1.2.3"), std::invalid_argument);
  EXPECT_THROW(bt::parse_addr("1.2.3.256"), std::invalid_argument);
  EXPECT_THROW(bt::parse_addr("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(bt::parse_addr("a.b.c.d"), std::invalid_argument);
}

TEST(Address, Slash16) {
  EXPECT_EQ(bt::slash16(bt::parse_addr("10.1.2.3")),
            bt::slash16(bt::parse_addr("10.1.200.200")));
  EXPECT_NE(bt::slash16(bt::parse_addr("10.1.2.3")),
            bt::slash16(bt::parse_addr("10.2.2.3")));
}

TEST(Cell, PackUnpackRoundTrip) {
  bt::Cell c;
  c.circ_id = 0xdeadbeef;
  c.command = bt::CellCommand::Relay;
  bu::Rng rng(1);
  bu::Bytes body = rng.bytes(bt::kCellPayloadLen);
  std::copy(body.begin(), body.end(), c.payload.begin());

  bu::Bytes wire = c.pack();
  EXPECT_EQ(wire.size(), bt::kCellLen);
  bt::Cell back = bt::Cell::unpack(wire);
  EXPECT_EQ(back.circ_id, c.circ_id);
  EXPECT_EQ(back.command, c.command);
  EXPECT_EQ(back.payload, c.payload);
}

TEST(Cell, UnpackRejectsWrongSize) {
  EXPECT_THROW(bt::Cell::unpack(bu::Bytes(10)), bu::ParseError);
  EXPECT_THROW(bt::Cell::unpack(bu::Bytes(bt::kCellLen + 1)), bu::ParseError);
}

TEST(Cell, SetPayloadBounds) {
  bt::Cell c;
  c.set_payload(bu::Bytes(bt::kCellPayloadLen, 1));
  EXPECT_EQ(c.payload[0], 1);
  EXPECT_THROW(c.set_payload(bu::Bytes(bt::kCellPayloadLen + 1, 1)),
               std::invalid_argument);
}

TEST(RelayCell, PackUnpackRoundTrip) {
  bt::RelayCell rc;
  rc.relay_cmd = bt::RelayCommand::Data;
  rc.stream_id = 42;
  rc.digest = 0x01020304;
  rc.data = bu::to_bytes("hello tor");
  auto payload = rc.pack();
  bt::RelayCell back = bt::RelayCell::unpack(payload);
  EXPECT_EQ(back.relay_cmd, rc.relay_cmd);
  EXPECT_EQ(back.recognized, 0);
  EXPECT_EQ(back.stream_id, rc.stream_id);
  EXPECT_EQ(back.digest, rc.digest);
  EXPECT_EQ(back.data, rc.data);
}

TEST(RelayCell, MaxDataFits) {
  bt::RelayCell rc;
  rc.data = bu::Bytes(bt::kRelayDataMax, 0x7f);
  auto payload = rc.pack();
  EXPECT_EQ(bt::RelayCell::unpack(payload).data.size(), bt::kRelayDataMax);
  rc.data.push_back(1);
  EXPECT_THROW(rc.pack(), std::invalid_argument);
}

TEST(RelayCell, UnpackRejectsBadLength) {
  std::array<std::uint8_t, bt::kCellPayloadLen> payload{};
  payload[9] = 0x7f;  // length field = 0x7fXX > kRelayDataMax
  payload[10] = 0xff;
  EXPECT_THROW(bt::RelayCell::unpack(payload), bu::ParseError);
}

TEST(Wire, FrameUnframeRoundTrip) {
  bt::Cell c;
  c.circ_id = 7;
  c.command = bt::CellCommand::Create;
  bu::Bytes framed = bt::frame_cell(c);
  EXPECT_TRUE(bt::is_framed_cell(framed));
  bt::Cell back = bt::unframe_cell(framed);
  EXPECT_EQ(back.circ_id, 7u);
  EXPECT_EQ(back.command, bt::CellCommand::Create);
}

TEST(Wire, TcpMessagesAreNotCells) {
  bu::Bytes not_cell(bt::kCellLen + 1, 0x01);  // right size, wrong marker
  EXPECT_FALSE(bt::is_framed_cell(not_cell));
  bu::Bytes short_msg = {bt::kCellFrameMarker, 1, 2};
  EXPECT_FALSE(bt::is_framed_cell(short_msg));
  EXPECT_THROW(bt::unframe_cell(short_msg), bu::ParseError);
}

TEST(ExitPolicy, ParseAndMatch) {
  auto p = bt::ExitPolicy::parse("accept *:80\naccept *:443\nreject *:*");
  EXPECT_TRUE(p.allows({bt::parse_addr("1.2.3.4"), 80}));
  EXPECT_TRUE(p.allows({bt::parse_addr("9.9.9.9"), 443}));
  EXPECT_FALSE(p.allows({bt::parse_addr("1.2.3.4"), 22}));
  EXPECT_TRUE(p.allows_anything());
}

TEST(ExitPolicy, FirstMatchWins) {
  auto p = bt::ExitPolicy::parse("reject 10.0.0.0/8:*\naccept *:*");
  EXPECT_FALSE(p.allows({bt::parse_addr("10.1.2.3"), 80}));
  EXPECT_TRUE(p.allows({bt::parse_addr("11.1.2.3"), 80}));
}

TEST(ExitPolicy, PrefixAndPortRanges) {
  auto p = bt::ExitPolicy::parse("accept 192.168.0.0/16:8000-9000\nreject *:*");
  EXPECT_TRUE(p.allows({bt::parse_addr("192.168.55.1"), 8500}));
  EXPECT_FALSE(p.allows({bt::parse_addr("192.169.0.1"), 8500}));
  EXPECT_FALSE(p.allows({bt::parse_addr("192.168.0.1"), 7999}));
  EXPECT_TRUE(p.allows({bt::parse_addr("192.168.0.1"), 8000}));
  EXPECT_TRUE(p.allows({bt::parse_addr("192.168.0.1"), 9000}));
}

TEST(ExitPolicy, SingleHostSinglePort) {
  auto p = bt::ExitPolicy::parse("accept 1.2.3.4:80, reject *:*");
  EXPECT_TRUE(p.allows({bt::parse_addr("1.2.3.4"), 80}));
  EXPECT_FALSE(p.allows({bt::parse_addr("1.2.3.5"), 80}));
}

TEST(ExitPolicy, EmptyRejects) {
  bt::ExitPolicy p;
  EXPECT_FALSE(p.allows({bt::parse_addr("1.2.3.4"), 80}));
  EXPECT_FALSE(p.allows_anything());
}

TEST(ExitPolicy, RejectAllAllowsNothing) {
  auto p = bt::ExitPolicy::reject_all();
  EXPECT_FALSE(p.allows_anything());
  EXPECT_TRUE(bt::ExitPolicy::accept_all().allows({1, 1}));
}

TEST(ExitPolicy, ParseRejectsMalformed) {
  EXPECT_THROW(bt::ExitPolicy::parse("frobnicate *:80"), std::invalid_argument);
  EXPECT_THROW(bt::ExitPolicy::parse("accept *"), std::invalid_argument);
  EXPECT_THROW(bt::ExitPolicy::parse("accept 1.2.3.4/40:80"), std::invalid_argument);
  EXPECT_THROW(bt::ExitPolicy::parse("accept *:90-80"), std::invalid_argument);
  EXPECT_THROW(bt::ExitPolicy::parse("accept *:70000"), std::invalid_argument);
}

TEST(ExitPolicy, CommentsAndBlanksIgnored) {
  auto p = bt::ExitPolicy::parse("# comment\n\n  accept *:80  \nreject *:*");
  EXPECT_TRUE(p.allows({1, 80}));
}

TEST(ExitPolicy, SerializeRoundTrip) {
  auto p = bt::ExitPolicy::parse("accept 10.2.0.0/16:443-8443\nreject *:*");
  auto back = bt::ExitPolicy::deserialize(p.serialize());
  EXPECT_EQ(back.to_string(), p.to_string());
  EXPECT_TRUE(back.allows({bt::parse_addr("10.2.9.9"), 443}));
  EXPECT_FALSE(back.allows({bt::parse_addr("10.3.9.9"), 443}));
}

TEST(ByteQueue, PushPopRechunks) {
  bt::ByteQueue q;
  q.push(bu::to_bytes("hello "));
  q.push(bu::to_bytes("world"));
  EXPECT_EQ(q.size(), 11u);
  EXPECT_EQ(bu::to_string(q.pop(7)), "hello w");
  EXPECT_EQ(bu::to_string(q.pop(100)), "orld");
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.pop(5).empty());
}

TEST(ByteQueue, ManySmallSegmentsPopLarge) {
  bt::ByteQueue q;
  for (int i = 0; i < 100; ++i) q.push(bu::Bytes{static_cast<std::uint8_t>(i)});
  bu::Bytes all = q.pop(100);
  ASSERT_EQ(all.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
}
