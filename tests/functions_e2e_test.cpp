// End-to-end tests of the paper's functions running on the full stack:
// Browser (§7), Dropbox (§9.2), Cover (§9.1), Shard (§9.3),
// LoadBalancer (§8), PolicyQuery (§5.5) and the PoW gate (§9.4).
#include <gtest/gtest.h>

#include "core/world.hpp"
#include "functions/library.hpp"
#include "functions/loadbalancer.hpp"
#include "functions/pow.hpp"
#include "functions/shard.hpp"
#include "tor/hs.hpp"
#include "util/zlite.hpp"

namespace bc = bento::core;
namespace bf = bento::functions;
namespace bt = bento::tor;
namespace bu = bento::util;

namespace {
struct Deployed {
  std::shared_ptr<bc::BentoConnection> conn;
  std::optional<bc::TokenPair> tokens;
  std::string error;
  std::vector<bu::Bytes> outputs;
};

Deployed deploy_function(bc::BentoWorld& world, bc::BentoWorld::Client& client,
                         const std::string& box, const bc::FunctionManifest& manifest,
                         const std::string& source, const std::string& native = "",
                         bu::Bytes args = {}) {
  Deployed d;
  client.bento->connect(box, [&](std::shared_ptr<bc::BentoConnection> conn) {
    d.conn = std::move(conn);
  });
  world.run();
  if (d.conn == nullptr) {
    d.error = "connect failed";
    return d;
  }
  d.conn->set_output_handler([&d](bu::Bytes out) { d.outputs.push_back(std::move(out)); });
  bool ok = false;
  d.conn->spawn(manifest.image, [&](bool s, std::string err) {
    ok = s;
    if (!s) d.error = err;
  });
  world.run();
  if (!ok) return d;
  d.conn->upload(manifest, source, native, args,
                 [&](std::optional<bc::TokenPair> tokens, std::string err) {
                   d.tokens = std::move(tokens);
                   if (!err.empty()) d.error = err;
                 });
  world.run();
  return d;
}

std::string exit_box_of(bc::BentoWorld& world) {
  for (const auto& relay : world.bed().consensus().relays) {
    if (relay.flags.exit) return relay.fingerprint();
  }
  return "";
}
}  // namespace

TEST(FunctionsE2E, BrowserFetchesCompressesAndPads) {
  bc::BentoWorld world;
  world.start();
  const std::string page(50'000, 'w');  // highly compressible
  world.bed().add_web_server(bt::parse_addr("93.184.216.34"),
                             [&page](const std::string&) {
                               return bu::to_bytes(page);
                             });
  auto client = world.make_client("alice");
  auto d = deploy_function(world, client, exit_box_of(world),
                           bf::browser_manifest(), bf::browser_source());
  ASSERT_TRUE(d.tokens.has_value()) << d.error;
  EXPECT_TRUE(d.conn->attested());  // Browser runs in the SGX image

  // Padding 4096: response must be exactly a multiple of 4096.
  d.conn->invoke(d.tokens->invocation.bytes(),
                 bu::to_bytes("http://93.184.216.34/index.html 4096"));
  world.run();
  ASSERT_EQ(d.outputs.size(), 1u);
  EXPECT_EQ(d.outputs[0].size() % 4096, 0u);
  EXPECT_EQ(d.outputs[0].size(), 4096u);  // 50 KB of 'w' compresses < 4 KiB

  // The compressed page is recoverable from the front of the padded blob.
  bu::Bytes unpadded = bu::zlite::decompress(
      bu::ByteView(d.outputs[0].data(), d.outputs[0].size()));
  // decompress tolerates trailing bytes? No — so decompress the exact
  // prefix by re-compressing the expected page for reference:
  EXPECT_EQ(bu::to_string(unpadded), page);
}

TEST(FunctionsE2E, BrowserZeroPaddingReturnsCompressedOnly) {
  bc::BentoWorld world;
  world.start();
  world.bed().add_web_server(bt::parse_addr("93.184.216.34"),
                             [](const std::string&) {
                               return bu::to_bytes(std::string(10'000, 'z'));
                             });
  auto client = world.make_client("alice");
  auto d = deploy_function(world, client, exit_box_of(world),
                           bf::browser_manifest(), bf::browser_source());
  ASSERT_TRUE(d.tokens.has_value()) << d.error;
  d.conn->invoke(d.tokens->invocation.bytes(),
                 bu::to_bytes("http://93.184.216.34/x 0"));
  world.run();
  ASSERT_EQ(d.outputs.size(), 1u);
  EXPECT_LT(d.outputs[0].size(), 1000u);  // compressed, unpadded
  EXPECT_EQ(bu::to_string(bu::zlite::decompress(d.outputs[0])),
            std::string(10'000, 'z'));
}

TEST(FunctionsE2E, BrowserReportsFetchFailure) {
  bc::BentoWorld world;
  world.start();  // no web server registered
  auto client = world.make_client("alice");
  auto d = deploy_function(world, client, exit_box_of(world),
                           bf::browser_manifest(), bf::browser_source());
  ASSERT_TRUE(d.tokens.has_value()) << d.error;
  d.conn->invoke(d.tokens->invocation.bytes(),
                 bu::to_bytes("http://93.184.216.34/x 0"));
  world.run();
  ASSERT_EQ(d.outputs.size(), 1u);
  EXPECT_EQ(bu::to_string(d.outputs[0]), "ERR fetch failed");
}

TEST(FunctionsE2E, DropboxPutGetDelete) {
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  auto d = deploy_function(world, client, boxes[1], bf::dropbox_manifest(),
                           bf::dropbox_source());
  ASSERT_TRUE(d.tokens.has_value()) << d.error;

  bu::Bytes put = bu::to_bytes("PUT:");
  bu::Rng rng(1);
  const bu::Bytes payload = rng.bytes(10'000);
  bu::append(put, payload);
  d.conn->invoke(d.tokens->invocation.bytes(), put);
  world.run();
  ASSERT_EQ(d.outputs.size(), 1u);
  EXPECT_EQ(bu::to_string(d.outputs[0]), "OK");

  d.conn->invoke(d.tokens->invocation.bytes(), bu::to_bytes("GET:"));
  world.run();
  ASSERT_EQ(d.outputs.size(), 2u);
  EXPECT_EQ(d.outputs[1], payload);

  d.conn->invoke(d.tokens->invocation.bytes(), bu::to_bytes("DEL:"));
  world.run();
  ASSERT_EQ(d.outputs.size(), 3u);
  d.conn->invoke(d.tokens->invocation.bytes(), bu::to_bytes("GET:"));
  world.run();
  ASSERT_EQ(d.outputs.size(), 4u);
  EXPECT_EQ(bu::to_string(d.outputs[3]), "MISSING");
}

TEST(FunctionsE2E, DropboxSharedTokenAcrossUsers) {
  // Paper §9.2: the invocation token is the capability to the dropbox.
  bc::BentoWorld world;
  world.start();
  auto alice = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  auto d = deploy_function(world, alice, boxes[0], bf::dropbox_manifest(),
                           bf::dropbox_source());
  ASSERT_TRUE(d.tokens.has_value()) << d.error;

  bu::Bytes put = bu::to_bytes("PUT:dead drop message");
  d.conn->invoke(d.tokens->invocation.bytes(), put);
  world.run();

  // Bob retrieves with the shared token while Alice is offline.
  auto bob = world.make_client("bob");
  std::vector<bu::Bytes> bob_outputs;
  bob.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> conn) {
    ASSERT_NE(conn, nullptr);
    conn->set_output_handler([&](bu::Bytes out) { bob_outputs.push_back(std::move(out)); });
    conn->invoke(d.tokens->invocation.bytes(), bu::to_bytes("GET:"));
  });
  world.run();
  ASSERT_EQ(bob_outputs.size(), 1u);
  EXPECT_EQ(bu::to_string(bob_outputs[0]), "dead drop message");
}

TEST(FunctionsE2E, DropboxExpiry) {
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  // Install with a 30-second expiry (armed at each PUT).
  auto d = deploy_function(world, client, boxes[0], bf::dropbox_manifest(),
                           bf::dropbox_source(), "", bu::to_bytes("30.0"));
  ASSERT_TRUE(d.tokens.has_value()) << d.error;
  // PUT then GET land well inside the 30 s window; the expiry timer fires
  // later in the same run.
  d.conn->invoke(d.tokens->invocation.bytes(), bu::to_bytes("PUT:ephemeral"));
  d.conn->invoke(d.tokens->invocation.bytes(), bu::to_bytes("GET:"));
  world.run();
  ASSERT_GE(d.outputs.size(), 2u);
  EXPECT_EQ(bu::to_string(d.outputs[1]), "ephemeral");

  d.conn->invoke(d.tokens->invocation.bytes(), bu::to_bytes("GET:"));
  world.run();
  EXPECT_EQ(bu::to_string(d.outputs.back()), "MISSING");
}

TEST(FunctionsE2E, CoverGeneratesConstantRateTraffic) {
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  auto d = deploy_function(world, client, boxes[0], bf::cover_manifest(),
                           bf::cover_source());
  ASSERT_TRUE(d.tokens.has_value()) << d.error;

  d.conn->invoke(d.tokens->invocation.bytes(), bu::to_bytes("start 0.5"));
  world.run_for(bu::Duration::seconds(10));
  // ~20 junk payloads at 2/sec.
  EXPECT_GE(d.outputs.size(), 18u);
  EXPECT_LE(d.outputs.size(), 22u);
  for (const auto& out : d.outputs) EXPECT_EQ(out.size(), 490u);

  const std::size_t at_stop = d.outputs.size();
  d.conn->invoke(d.tokens->invocation.bytes(), bu::to_bytes("stop"));
  world.run_for(bu::Duration::seconds(5));
  // At most the in-flight tick plus the "stopped" ack.
  EXPECT_LE(d.outputs.size(), at_stop + 2);
}

TEST(FunctionsE2E, PolicyQueryReturnsPolicy) {
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  const std::string policy_text = world.server(0).policy().to_string();
  auto d = deploy_function(world, client, world.server(0).fingerprint(),
                           bf::policy_query_manifest(), bf::policy_query_source(),
                           "", bu::to_bytes(policy_text));
  ASSERT_TRUE(d.tokens.has_value()) << d.error;
  d.conn->invoke(d.tokens->invocation.bytes(), bu::to_bytes("?"));
  world.run();
  ASSERT_EQ(d.outputs.size(), 1u);
  EXPECT_EQ(bu::to_string(d.outputs[0]), policy_text);
  EXPECT_NE(policy_text.find("python-op-sgx"), std::string::npos);
}

TEST(FunctionsE2E, ShardStoreAndFetchAnyK) {
  bc::BentoWorldOptions options;
  options.testbed.guards = 3;
  options.testbed.middles = 5;
  options.testbed.exits = 3;
  bc::BentoWorld world(options);
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  ASSERT_GE(boxes.size(), 5u);

  bu::Rng rng(11);
  const bu::Bytes file = rng.bytes(30'000);

  bf::ShardClient shard_client(*client.bento, 3, 5);
  std::vector<bf::ShardClient::Placement> placements;
  bool store_ok = false;
  shard_client.store(file, {boxes[0], boxes[1], boxes[2], boxes[3], boxes[4]},
                     [&](bool ok, std::vector<bf::ShardClient::Placement> p) {
                       store_ok = ok;
                       placements = std::move(p);
                     });
  world.run();
  ASSERT_TRUE(store_ok);
  ASSERT_EQ(placements.size(), 5u);

  // Fetch from only 3 of the 5 dropboxes (the last three).
  std::vector<bf::ShardClient::Placement> subset(placements.begin() + 2,
                                                 placements.end());
  std::optional<bu::Bytes> fetched;
  shard_client.fetch(subset, [&](std::optional<bu::Bytes> out) { fetched = std::move(out); });
  world.run();
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, file);
}

TEST(FunctionsE2E, PowGateAdmitsOnlyStampedRequests) {
  bc::BentoWorld world;
  world.natives();  // ensure registry exists before start
  bf::register_pow_gate(world.natives());
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());

  const int difficulty = 12;
  auto d = deploy_function(world, client, boxes[0], bf::pow_gate_manifest(), "",
                           "pow-gate", bu::Bytes{difficulty});
  ASSERT_TRUE(d.tokens.has_value()) << d.error;

  // Unstamped request denied.
  d.conn->invoke(d.tokens->invocation.bytes(), bu::to_bytes("0:hello"));
  world.run();
  ASSERT_EQ(d.outputs.size(), 1u);
  EXPECT_EQ(bu::to_string(d.outputs[0]), "DENY");

  // Client grinds a stamp, request admitted.
  auto nonce = bf::pow_solve(bu::to_bytes(bf::PowGateFunction::kContext), difficulty);
  ASSERT_TRUE(nonce.has_value());
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llx", static_cast<unsigned long long>(*nonce));
  d.conn->invoke(d.tokens->invocation.bytes(),
                 bu::to_bytes(std::string(buf) + ":hello"));
  world.run();
  ASSERT_EQ(d.outputs.size(), 2u);
  EXPECT_EQ(bu::to_string(d.outputs[1]), "ADMIT:hello");
}

TEST(FunctionsE2E, LoadBalancerServesAndScales) {
  bc::BentoWorldOptions options;
  options.testbed.guards = 3;
  options.testbed.middles = 6;
  options.testbed.exits = 2;
  options.testbed.relay_bandwidth = 4e6;
  bc::BentoWorld world(options);
  bf::register_loadbalancer(world.natives());
  world.start();

  auto operator_client = world.make_client("operator");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  ASSERT_GE(boxes.size(), 6u);

  bf::LoadBalancerConfig config;
  config.intro_points = 2;
  config.max_clients_per_replica = 1;  // aggressive scaling for the test
  config.content_bytes = 200'000;
  config.replica_boxes = {boxes[2], boxes[3]};
  config.idle_shutdown_seconds = 0;

  auto d = deploy_function(world, operator_client, boxes[1],
                           bf::loadbalancer_manifest(), "", "loadbalancer",
                           config.serialize());
  ASSERT_TRUE(d.tokens.has_value()) << d.error;
  world.run();

  // Learn the onion address.
  d.conn->invoke(d.tokens->invocation.bytes(), bu::to_bytes("onion"));
  world.run();
  ASSERT_FALSE(d.outputs.empty());
  const std::string onion = bu::to_string(d.outputs.back());
  ASSERT_FALSE(onion.empty());

  // Three clients download concurrently; with max 1 client per replica the
  // LB must spin up both candidate replicas.
  struct Download {
    std::unique_ptr<bento::tor::OnionProxy> proxy;
    std::unique_ptr<bento::tor::HsClient> hs;
    std::size_t received = 0;
    bool done = false;
  };
  std::vector<std::unique_ptr<Download>> downloads;
  for (int i = 0; i < 3; ++i) {
    auto dl = std::make_unique<Download>();
    dl->proxy = world.bed().make_client("dl" + std::to_string(i), 4e6);
    dl->hs = std::make_unique<bento::tor::HsClient>(*dl->proxy, world.bed().directory());
    Download* raw = dl.get();
    world.sim().after(bu::Duration::seconds(1 + i), [raw, onion, &world] {
      raw->hs->connect(onion, [raw](bento::tor::CircuitOrigin* circ) {
        if (circ == nullptr) return;
        bento::tor::Stream::Callbacks cbs;
        cbs.on_data = [raw](bu::ByteView data) { raw->received += data.size(); };
        cbs.on_end = [raw] { raw->done = true; };
        bento::tor::Stream* stream = circ->open_stream({0, 80}, std::move(cbs));
        stream->set_on_connected([stream] { stream->send(bu::to_bytes("GET\n")); });
      });
    });
    downloads.push_back(std::move(dl));
  }
  world.run();

  for (const auto& dl : downloads) {
    EXPECT_TRUE(dl->done);
    EXPECT_EQ(dl->received, 200'000u);
  }

  d.conn->invoke(d.tokens->invocation.bytes(), bu::to_bytes("status"));
  world.run();
  const std::string status = bu::to_string(d.outputs.back());
  // peak replicas: local + both candidates = 3.
  EXPECT_NE(status.find("peak:3"), std::string::npos) << status;
  EXPECT_NE(status.find("introductions:3"), std::string::npos) << status;
}
