// TEE simulation: enclaves, sealing, EPC, attestation, conclaves,
// FS-Protect, and the attested secure channel.
#include <gtest/gtest.h>

#include "tee/attestation.hpp"
#include "tee/conclave.hpp"
#include "tee/enclave.hpp"
#include "tee/epc.hpp"
#include "util/rng.hpp"

namespace bt = bento::tee;
namespace bu = bento::util;
namespace bc = bento::crypto;

TEST(Enclave, MeasurementIsCodeHash) {
  bu::Rng rng(1);
  bt::Platform platform(1, 2, rng);
  bt::Enclave a(platform, bu::to_bytes("code v1"), "a");
  bt::Enclave b(platform, bu::to_bytes("code v1"), "b");
  bt::Enclave c(platform, bu::to_bytes("code v2"), "c");
  EXPECT_EQ(a.measurement(), b.measurement());
  EXPECT_NE(a.measurement(), c.measurement());
  EXPECT_EQ(bt::measurement_hex(a.measurement()).size(), 64u);
}

TEST(Enclave, SealUnsealSameMeasurement) {
  bu::Rng rng(2);
  bt::Platform platform(1, 2, rng);
  bt::Enclave e1(platform, bu::to_bytes("image"), "e1");
  bt::Enclave e2(platform, bu::to_bytes("image"), "e2");  // same image
  auto sealed = e1.seal(bu::to_bytes("secret state"));
  auto opened = e2.unseal(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(bu::to_string(*opened), "secret state");
}

TEST(Enclave, SealBoundToMeasurementAndPlatform) {
  bu::Rng rng(3);
  bt::Platform p1(1, 2, rng), p2(2, 2, rng);
  bt::Enclave same_platform_other_code(p1, bu::to_bytes("other"), "x");
  bt::Enclave other_platform_same_code(p2, bu::to_bytes("image"), "y");
  bt::Enclave original(p1, bu::to_bytes("image"), "o");

  auto sealed = original.seal(bu::to_bytes("secret"));
  EXPECT_FALSE(same_platform_other_code.unseal(sealed).has_value());
  EXPECT_FALSE(other_platform_same_code.unseal(sealed).has_value());
  EXPECT_FALSE(original.unseal(bu::Bytes(5)).has_value());
}

TEST(Epc, AccountsAllocations) {
  bt::EpcManager epc(100 << 20);
  epc.allocate(1, 40 << 20);
  epc.allocate(2, 50 << 20);
  EXPECT_EQ(epc.committed(), std::size_t{90} << 20);
  EXPECT_FALSE(epc.paging());
  epc.free(1);
  EXPECT_EQ(epc.committed(), std::size_t{50} << 20);
  EXPECT_EQ(epc.enclave_count(), 1u);
}

TEST(Epc, PagingBeyondUsable) {
  bt::EpcManager epc(10 << 20);
  epc.allocate(1, 8 << 20);
  EXPECT_FALSE(epc.paging());
  EXPECT_EQ(epc.page_faults(), 0u);
  epc.allocate(2, 8 << 20);
  EXPECT_TRUE(epc.paging());
  EXPECT_EQ(epc.paged_out_bytes(), std::size_t{6} << 20);
  EXPECT_GT(epc.page_faults(), 1000u);  // 6 MiB / 4 KiB
}

TEST(Epc, SingleOversizeAllocationThrows) {
  bt::EpcManager epc(10 << 20);
  EXPECT_THROW(epc.allocate(1, 11 << 20), bt::EpcExhausted);
}

TEST(Epc, ReallocationAdjusts) {
  bt::EpcManager epc(10 << 20);
  epc.allocate(1, 4 << 20);
  epc.allocate(1, 6 << 20);  // grow in place
  EXPECT_EQ(epc.committed(), std::size_t{6} << 20);
  EXPECT_EQ(epc.enclave_count(), 1u);
}

TEST(Attestation, QuoteVerifiesAfterProvisioning) {
  bu::Rng rng(10);
  bt::IntelAttestationService ias(rng, 2);
  bt::Platform platform(77, 2, rng);
  ias.provision(platform);
  bt::Enclave enclave(platform, bu::to_bytes("bento-runtime"), "rt");

  auto quote = bt::generate_quote(enclave, bu::to_bytes("binding"));
  auto report = ias.verify_quote(quote, 123456);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->tcb_status, bt::TcbStatus::UpToDate);
  EXPECT_TRUE(report->verify(ias.public_key()));
  EXPECT_EQ(report->quote.measurement, enclave.measurement());
}

TEST(Attestation, UnprovisionedPlatformRejected) {
  bu::Rng rng(11);
  bt::IntelAttestationService ias(rng, 2);
  bt::Platform rogue(99, 2, rng);  // never provisioned
  bt::Enclave enclave(rogue, bu::to_bytes("code"), "e");
  auto quote = bt::generate_quote(enclave, {});
  EXPECT_FALSE(ias.verify_quote(quote, 0).has_value());
}

TEST(Attestation, ForgedMacRejected) {
  bu::Rng rng(12);
  bt::IntelAttestationService ias(rng, 2);
  bt::Platform platform(5, 2, rng);
  ias.provision(platform);
  bt::Enclave enclave(platform, bu::to_bytes("code"), "e");
  auto quote = bt::generate_quote(enclave, {});
  quote.measurement[0] ^= 1;  // claim a different image
  EXPECT_FALSE(ias.verify_quote(quote, 0).has_value());
}

TEST(Attestation, OutdatedTcbFlagged) {
  bu::Rng rng(13);
  bt::IntelAttestationService ias(rng, 2);
  bt::Platform platform(5, 2, rng);
  ias.provision(platform);
  bt::Enclave enclave(platform, bu::to_bytes("code"), "e");

  ias.advance_tcb(3);  // a new vulnerability patch is published
  auto report = ias.verify_quote(bt::generate_quote(enclave, {}), 0);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->tcb_status, bt::TcbStatus::OutOfDate);

  platform.upgrade_tcb(3);
  report = ias.verify_quote(bt::generate_quote(enclave, {}), 0);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->tcb_status, bt::TcbStatus::UpToDate);
}

TEST(Attestation, ReportSignatureBindsContents) {
  bu::Rng rng(14);
  bt::IntelAttestationService ias(rng, 2);
  bt::Platform platform(5, 2, rng);
  ias.provision(platform);
  bt::Enclave enclave(platform, bu::to_bytes("code"), "e");
  auto report = *ias.verify_quote(bt::generate_quote(enclave, {}), 42);
  report.tcb_status = bt::TcbStatus::OutOfDate;  // tamper
  EXPECT_FALSE(report.verify(ias.public_key()));
}

TEST(Attestation, QuoteSerializeRoundTrip) {
  bu::Rng rng(15);
  bt::Platform platform(123, 7, rng);
  bt::Enclave enclave(platform, bu::to_bytes("img"), "e");
  auto q = bt::generate_quote(enclave, bu::to_bytes("rd"));
  auto back = bt::Quote::deserialize(q.serialize());
  EXPECT_EQ(back.measurement, q.measurement);
  EXPECT_EQ(back.report_data, q.report_data);
  EXPECT_EQ(back.platform_id, 123u);
  EXPECT_EQ(back.tcb_version, 7u);
  EXPECT_EQ(back.mac, q.mac);
}

TEST(FsProtect, WritesAreEncrypted) {
  bu::Rng rng(20);
  bt::FsProtect fs(rng);
  const std::string secret = "the cached webpage contents";
  fs.write("page.html", bu::to_bytes(secret));

  // Operator view: ciphertext differs from plaintext and leaks no substring.
  const bu::Bytes& stored = fs.ciphertext_of("page.html");
  const std::string stored_str = bu::to_string(stored);
  EXPECT_EQ(stored.size(), secret.size() + bento::crypto::kAeadTagLen);
  EXPECT_EQ(stored_str.find("webpage"), std::string::npos);

  auto back = fs.read("page.html");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(bu::to_string(*back), secret);
}

TEST(FsProtect, TamperDetected) {
  bu::Rng rng(21);
  bt::FsProtect fs(rng);
  fs.write("f", bu::to_bytes("data"));
  fs.corrupt("f", 1);
  EXPECT_FALSE(fs.read("f").has_value());
}

TEST(FsProtect, EphemeralKeysDiffer) {
  bu::Rng rng(22);
  bt::FsProtect fs1(rng), fs2(rng);
  fs1.write("f", bu::to_bytes("same data"));
  fs2.write("f", bu::to_bytes("same data"));
  EXPECT_NE(fs1.ciphertext_of("f"), fs2.ciphertext_of("f"));
}

TEST(FsProtect, OverwriteListRemoveAccounting) {
  bu::Rng rng(23);
  bt::FsProtect fs(rng);
  fs.write("a", bu::Bytes(100, 1));
  fs.write("b", bu::Bytes(50, 2));
  EXPECT_EQ(fs.total_plaintext_bytes(), 150u);
  fs.write("a", bu::Bytes(10, 3));
  EXPECT_EQ(fs.total_plaintext_bytes(), 60u);
  EXPECT_EQ(fs.list().size(), 2u);
  EXPECT_TRUE(fs.remove("a"));
  EXPECT_FALSE(fs.remove("a"));
  EXPECT_EQ(fs.total_plaintext_bytes(), 50u);
  EXPECT_FALSE(fs.read("a").has_value());
}

TEST(SecureChannel, AttestedHandshakeAndTraffic) {
  bu::Rng rng(30);
  bt::Platform platform(1, 2, rng);
  bt::Enclave enclave(platform, bu::to_bytes("loader"), "loader");

  bc::DhKeyPair client_eph;
  auto hello = bt::SecureChannel::client_hello(client_eph, rng);
  bt::SecureChannel::Accept accept;
  auto server = bt::SecureChannel::server_accept(hello, enclave, rng, &accept);
  auto client = bt::SecureChannel::client_finish(client_eph, accept,
                                                 enclave.measurement());
  ASSERT_TRUE(client.has_value());

  // Bidirectional sealed traffic.
  auto c1 = client->seal(bu::to_bytes("function upload"));
  auto at_server = server.open(c1);
  ASSERT_TRUE(at_server.has_value());
  EXPECT_EQ(bu::to_string(*at_server), "function upload");

  auto s1 = server.seal(bu::to_bytes("tokens"));
  auto at_client = client->open(s1);
  ASSERT_TRUE(at_client.has_value());
  EXPECT_EQ(bu::to_string(*at_client), "tokens");
}

TEST(SecureChannel, WrongMeasurementRejected) {
  bu::Rng rng(31);
  bt::Platform platform(1, 2, rng);
  bt::Enclave real(platform, bu::to_bytes("trusted loader"), "real");
  bt::Enclave evil(platform, bu::to_bytes("evil loader"), "evil");

  bc::DhKeyPair client_eph;
  auto hello = bt::SecureChannel::client_hello(client_eph, rng);
  bt::SecureChannel::Accept accept;
  bt::SecureChannel::server_accept(hello, evil, rng, &accept);
  EXPECT_FALSE(bt::SecureChannel::client_finish(client_eph, accept,
                                                real.measurement())
                   .has_value());
}

TEST(SecureChannel, ReplayRejected) {
  bu::Rng rng(32);
  bt::Platform platform(1, 2, rng);
  bt::Enclave enclave(platform, bu::to_bytes("loader"), "l");
  bc::DhKeyPair eph;
  auto hello = bt::SecureChannel::client_hello(eph, rng);
  bt::SecureChannel::Accept accept;
  auto server = bt::SecureChannel::server_accept(hello, enclave, rng, &accept);
  auto client = bt::SecureChannel::client_finish(eph, accept, enclave.measurement());
  ASSERT_TRUE(client.has_value());

  auto msg = client->seal(bu::to_bytes("m1"));
  ASSERT_TRUE(server.open(msg).has_value());
  EXPECT_FALSE(server.open(msg).has_value());  // replay: wrong sequence
}

TEST(SecureChannel, TranscriptSubstitutionRejected) {
  // A MITM replacing the server DH public invalidates the quote binding.
  bu::Rng rng(33);
  bt::Platform platform(1, 2, rng);
  bt::Enclave enclave(platform, bu::to_bytes("loader"), "l");
  bc::DhKeyPair eph;
  auto hello = bt::SecureChannel::client_hello(eph, rng);
  bt::SecureChannel::Accept accept;
  bt::SecureChannel::server_accept(hello, enclave, rng, &accept);
  auto mitm = bc::DhKeyPair::generate(rng);
  accept.dh_public = mitm.public_value;
  EXPECT_FALSE(
      bt::SecureChannel::client_finish(eph, accept, enclave.measurement()).has_value());
}

TEST(Conclave, RegistersEpcAndFsProtect) {
  bu::Rng rng(40);
  bt::Platform platform(1, 2, rng);
  bt::EpcManager epc;
  {
    bt::Conclave conclave(platform, epc, bu::to_bytes("runtime"), "c1", rng);
    EXPECT_EQ(epc.enclave_count(), 1u);
    EXPECT_EQ(epc.committed(), bt::Conclave::kBaselineOverheadBytes);
    conclave.set_memory_bytes(20 << 20);
    EXPECT_EQ(epc.committed(), (std::size_t{20} << 20) +
                                   bt::Conclave::kBaselineOverheadBytes);
    conclave.fs().write("x", bu::to_bytes("inside"));
    EXPECT_TRUE(conclave.fs().read("x").has_value());
  }
  EXPECT_EQ(epc.enclave_count(), 0u);  // destructor releases EPC
}

TEST(Conclave, ManyConclavesTriggerPaging) {
  // Paper §7.3: Bento+Browser ~16-20MB + 7.3MB conclave overhead; the 93MiB
  // EPC fits a handful before paging starts.
  bu::Rng rng(41);
  bt::Platform platform(1, 2, rng);
  bt::EpcManager epc;  // 93 MiB usable
  std::vector<std::unique_ptr<bt::Conclave>> conclaves;
  int fit_without_paging = 0;
  for (int i = 0; i < 10; ++i) {
    auto c = std::make_unique<bt::Conclave>(platform, epc,
                                            bu::to_bytes("runtime"), "c", rng);
    c->set_memory_bytes(18 << 20);  // Browser-sized function
    conclaves.push_back(std::move(c));
    if (!epc.paging()) fit_without_paging = i + 1;
  }
  EXPECT_GE(fit_without_paging, 3);
  EXPECT_LE(fit_without_paging, 4);  // (18M + 7.3M) * 4 > 93MiB
  EXPECT_TRUE(epc.paging());
}
