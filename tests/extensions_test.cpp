// Tests for the paper's §9.4 future-work items implemented as functions
// (multipath routing) and additional safety properties: the Stem firewall,
// aggregate-resource flooding (§6.2), reply-handle routing, and cover
// traffic as observed on the wire.
#include <gtest/gtest.h>

#include "core/stemfw.hpp"
#include "core/world.hpp"
#include "functions/library.hpp"
#include "functions/multipath.hpp"
#include "wf/trace.hpp"

namespace bc = bento::core;
namespace bf = bento::functions;
namespace bt = bento::tor;
namespace bu = bento::util;
namespace bw = bento::wf;

namespace {
struct Deployed {
  std::shared_ptr<bc::BentoConnection> conn;
  std::optional<bc::TokenPair> tokens;
  std::string error;
  std::vector<bu::Bytes> outputs;
};

Deployed deploy(bc::BentoWorld& world, bc::BentoWorld::Client& client,
                const std::string& box, const bc::FunctionManifest& manifest,
                const std::string& source, const std::string& native = "",
                bu::Bytes args = {}) {
  Deployed d;
  client.bento->connect(box, [&](std::shared_ptr<bc::BentoConnection> c) {
    d.conn = std::move(c);
  });
  world.run();
  if (d.conn == nullptr) {
    d.error = "connect failed";
    return d;
  }
  d.conn->set_output_handler([&d](bu::Bytes out) { d.outputs.push_back(std::move(out)); });
  bool ok = false;
  d.conn->spawn(manifest.image, [&](bool s, std::string e) {
    ok = s;
    if (!s) d.error = e;
  });
  world.run();
  if (!ok) return d;
  d.conn->upload(manifest, source, native, args,
                 [&](std::optional<bc::TokenPair> t, std::string e) {
                   d.tokens = std::move(t);
                   if (!e.empty()) d.error = e;
                 });
  world.run();
  return d;
}

std::string exit_box_of(bc::BentoWorld& world) {
  for (const auto& relay : world.bed().consensus().relays) {
    if (relay.flags.exit) return relay.fingerprint();
  }
  return "";
}
}  // namespace

TEST(Multipath, FetchesOverParallelCircuits) {
  bc::BentoWorldOptions options;
  options.testbed.guards = 3;
  options.testbed.middles = 6;
  options.testbed.exits = 2;
  bc::BentoWorld world(options);
  bf::register_multipath(world.natives());
  world.start();

  bu::Rng rng(5);
  const bu::Bytes body = rng.bytes(400'000);
  world.bed().add_web_server(bt::parse_addr("93.184.216.34"),
                             [&body](const std::string&) { return body; });

  auto client = world.make_client("alice", 4e6);
  bf::MultipathFetcher fetcher(*client.bento, 3);
  std::optional<bf::MultipathFetcher::Result> result;
  fetcher.fetch(exit_box_of(world), "http://93.184.216.34/big",
                [&] { return world.sim().now().seconds(); },
                [&](bf::MultipathFetcher::Result r) { result = std::move(r); });
  world.run();

  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->ok);
  EXPECT_EQ(result->body, body);  // reassembled in order
  // All three circuits carried data.
  ASSERT_EQ(result->per_path_bytes.size(), 3u);
  for (std::size_t bytes : result->per_path_bytes) EXPECT_GT(bytes, 100'000u);
}

TEST(Multipath, SinglePathDegeneratesGracefully) {
  bc::BentoWorld world;
  bf::register_multipath(world.natives());
  world.start();
  world.bed().add_web_server(bt::parse_addr("93.184.216.34"),
                             [](const std::string&) {
                               return bu::to_bytes("small body");
                             });
  auto client = world.make_client("alice");
  bf::MultipathFetcher fetcher(*client.bento, 1);
  std::optional<bf::MultipathFetcher::Result> result;
  fetcher.fetch(exit_box_of(world), "http://93.184.216.34/x",
                [&] { return world.sim().now().seconds(); },
                [&](bf::MultipathFetcher::Result r) { result = std::move(r); });
  world.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_EQ(bu::to_string(result->body), "small body");
}

TEST(Multipath, FetchFailureReported) {
  bc::BentoWorld world;
  bf::register_multipath(world.natives());
  world.start();  // no web server
  auto client = world.make_client("alice");
  bf::MultipathFetcher fetcher(*client.bento, 2);
  std::optional<bf::MultipathFetcher::Result> result;
  fetcher.fetch(exit_box_of(world), "http://93.184.216.34/x",
                [&] { return world.sim().now().seconds(); },
                [&](bf::MultipathFetcher::Result r) { result = std::move(r); });
  world.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
}

TEST(ReplyHandles, ScriptServesTwoClientsOnTheirOwnStreams) {
  bc::BentoWorld world;
  world.start();
  auto alice = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());

  // Subscribers register; a "publish" fans out to every registered channel.
  const std::string source = R"(
state = {"subs": []}
def on_message(msg):
    m = str(msg)
    if m == "sub":
        state["subs"].append(api.handle())
        api.send("subscribed")
    elif m.startswith("pub "):
        for h in state["subs"]:
            api.send_to(h, sub(m, 4))
)";
  auto d = deploy(world, alice, boxes[0], [] {
    bc::FunctionManifest m;
    m.name = "pubsub";
    m.resources.memory_bytes = 8 << 20;
    m.resources.cpu_instructions = 10'000'000;
    m.resources.disk_bytes = 1 << 20;
    m.resources.network_bytes = 8 << 20;
    return m;
  }(), source);
  ASSERT_TRUE(d.tokens.has_value()) << d.error;

  // Bob subscribes over his own connection.
  auto bob = world.make_client("bob");
  std::vector<bu::Bytes> bob_outputs;
  std::shared_ptr<bc::BentoConnection> bob_conn;
  bob.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> c) {
    bob_conn = std::move(c);
  });
  world.run();
  ASSERT_NE(bob_conn, nullptr);
  bob_conn->set_output_handler([&](bu::Bytes out) { bob_outputs.push_back(std::move(out)); });
  bob_conn->invoke(d.tokens->invocation.bytes(), bu::to_bytes("sub"));
  d.conn->invoke(d.tokens->invocation.bytes(), bu::to_bytes("sub"));
  world.run();

  // Alice publishes; both subscribers receive on their own streams.
  d.conn->invoke(d.tokens->invocation.bytes(), bu::to_bytes("pub breaking-news"));
  world.run();
  ASSERT_FALSE(bob_outputs.empty());
  EXPECT_EQ(bu::to_string(bob_outputs.back()), "breaking-news");
  EXPECT_EQ(bu::to_string(d.outputs.back()), "breaking-news");
}

TEST(StemFirewall, CircuitCapEnforced) {
  bc::BentoWorld world;
  world.start();
  bento::sandbox::SyscallFilter filter(
      {bento::sandbox::Syscall::TorCircuit, bento::sandbox::Syscall::TorDirectory});
  bc::StemSession session(world.server(0).stem_proxy(), world.bed().directory(),
                          filter, /*max_circuits=*/2);
  int built = 0;
  for (int i = 0; i < 2; ++i) {
    session.build_circuit({}, [&](bc::StemSession::CircuitHandle h) {
      if (h != 0) ++built;
    });
    world.run();
  }
  EXPECT_EQ(built, 2);
  EXPECT_EQ(session.owned_circuits(), 2u);
  EXPECT_THROW(session.build_circuit({}, [](bc::StemSession::CircuitHandle) {}),
               bento::sandbox::ResourceExceeded);
  // Destroying frees a slot.
  session.destroy_circuit(1);
  world.run();
  EXPECT_EQ(session.owned_circuits(), 1u);
}

TEST(StemFirewall, DeniedClassesThrow) {
  bc::BentoWorld world;
  world.start();
  bento::sandbox::SyscallFilter filter({bento::sandbox::Syscall::TorCircuit});
  bc::StemSession session(world.server(0).stem_proxy(), world.bed().directory(),
                          filter);
  EXPECT_THROW(session.consensus(), bento::sandbox::SyscallDenied);       // TorDirectory
  EXPECT_THROW(session.create_hidden_service(1), bento::sandbox::SyscallDenied);
  // Foreign/unknown circuit handles yield nullptr streams.
  EXPECT_EQ(session.open_stream(42, {1, 80}, {}), nullptr);
}

TEST(ResourceFlood, AggregateCapProtectsTheBox) {
  // Paper §6.2: flooding a box with functions must not starve the host;
  // the aggregate accountant fails newcomers instead.
  bc::BentoWorldOptions options;
  bc::BentoWorld world(options);
  world.start();
  auto client = world.make_client("attacker");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());

  // Each instance asks for the full per-function memory cap; the default
  // aggregate cap (512 MB) admits only so many.
  const std::string hog = R"(
data = []
def on_install(args):
    for i in range(3000):
        data.append("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
)";
  int installed = 0, refused = 0;
  for (int i = 0; i < 12; ++i) {
    bc::FunctionManifest manifest;
    manifest.name = "hog" + std::to_string(i);
    manifest.resources.memory_bytes = 60 << 20;
    manifest.resources.cpu_instructions = 50'000'000;
    manifest.resources.disk_bytes = 1 << 20;
    manifest.resources.network_bytes = 1 << 20;
    auto d = deploy(world, client, boxes[0], manifest, hog);
    if (d.tokens.has_value()) {
      ++installed;
    } else {
      ++refused;
    }
  }
  EXPECT_GT(installed, 0);
  // The server survives and still answers policy queries.
  std::optional<bc::MiddleboxPolicy> policy;
  std::shared_ptr<bc::BentoConnection> conn;
  client.bento->connect(boxes[0], [&](std::shared_ptr<bc::BentoConnection> c) {
    conn = std::move(c);
  });
  world.run();
  ASSERT_NE(conn, nullptr);
  conn->get_policy([&](std::optional<bc::MiddleboxPolicy> p) { policy = std::move(p); });
  world.run();
  EXPECT_TRUE(policy.has_value());
}

TEST(CoverTraffic, ConstantRateVisibleOnTheWire) {
  // §9.1: the wire at the victim's access link shows periodic fixed-size
  // bursts while Cover runs — the anonymity-set padding the paper wants.
  bc::BentoWorld world;
  world.start();
  auto client = world.make_client("alice");
  auto boxes = bc::BentoClient::find_boxes(world.bed().consensus());
  auto d = deploy(world, client, boxes[0], bf::cover_manifest(), bf::cover_source());
  ASSERT_TRUE(d.tokens.has_value()) << d.error;

  bw::TraceRecorder recorder(world.sim(), world.bed().net(), client.proxy->node());
  recorder.start();
  d.conn->invoke(d.tokens->invocation.bytes(), bu::to_bytes("start 1.0"));
  world.run_for(bu::Duration::seconds(12));
  bw::Trace trace = recorder.stop(0);

  // Roughly one inbound burst per second, all equal-sized.
  int inbound = 0;
  for (const auto& ev : trace.events) inbound += !ev.outgoing;
  EXPECT_GE(inbound, 10);
  EXPECT_LE(inbound, 30);  // ~2 cells per junk payload
  // Inter-burst spacing clusters near 1 s.
  std::vector<double> arrivals;
  for (const auto& ev : trace.events) {
    if (!ev.outgoing) arrivals.push_back(ev.time_seconds);
  }
  int near_one_second = 0;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    const double gap = arrivals[i] - arrivals[i - 1];
    if (gap > 0.8 && gap < 1.2) ++near_one_second;
  }
  EXPECT_GE(near_one_second, 8);
}
