// Shard-observatory suite (DESIGN.md §13): the profiler's deterministic
// half must be a pure function of (seed, topology, region split) — its
// ShardProfile JSON, stats section, and registry-backed shard.* metrics
// byte-identical at shard counts {1, 2, 4}, including snapshots taken
// *mid-run* from an exclusive event (the snapshot_stats path) — and taking
// one must not perturb the final tallies. Plus units for the SLO spec
// grammar / engine and the bentotrace-side ShardProfile parser.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bentotrace/shards.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/slo.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace bo = bento::obs;
namespace bs = bento::sim;
namespace bt = bento::tools;
namespace bu = bento::util;

using bu::Duration;
using bu::Time;

namespace {

/// Decrements the hop budget in byte 0 and echoes back until it hits zero.
class EchoHandler : public bs::MessageHandler {
 public:
  bs::Network* net = nullptr;
  bs::NodeId self = bs::kInvalidNode;

  void on_message(bs::NodeId from, bu::Bytes data) override {
    if (data.empty() || data[0] == 0) return;
    data[0] -= 1;
    net->send(self, from, std::move(data));
  }
};

struct RunCapture {
  std::string profile_json;   // final ShardProfileSnapshot::to_json()
  std::string section;        // final to_section()
  std::string registry_json;  // final Registry snapshot (shard.* mirrors)
  std::string midrun_json;    // snapshot taken from an exclusive event
  std::string midrun_section;
  std::uint64_t windows = 0;
};

/// 4-region / 8-node echo mesh; every node talks intra- and cross-region.
/// An exclusive event at 300 ms reads the profiler the way snapshot_stats
/// does, mid-run, to prove the merged view is stable at a barrier.
RunCapture run_profiled(std::uint64_t seed, unsigned shards) {
  bo::shard_profiler().reset();
  bo::registry().reset();

  bs::Simulator sim(seed, shards);
  for (int r = 1; r < 4; ++r) sim.add_region();
  bs::Network net(sim);
  std::vector<std::unique_ptr<EchoHandler>> handlers;
  std::vector<bs::NodeId> ids;
  for (int r = 0; r < 4; ++r) {
    for (int i = 0; i < 2; ++i) {
      auto h = std::make_unique<EchoHandler>();
      const bs::NodeId id = net.add_node(bs::NodeSpec{.name = "node"}, h.get());
      net.set_region(id, static_cast<std::uint32_t>(r));
      h->net = &net;
      h->self = id;
      ids.push_back(id);
      handlers.push_back(std::move(h));
    }
  }
  for (int r = 0; r < 4; ++r) {
    net.set_latency(ids[r * 2], ids[r * 2 + 1], Duration::millis(2));
  }

  RunCapture cap;
  sim.at_exclusive(Time::from_micros(300'000), [&cap] {
    const bo::ShardProfileSnapshot s = bo::shard_profiler().snapshot();
    cap.midrun_json = s.to_json();
    cap.midrun_section = s.to_section();
  });
  const Time start = Time::from_micros(10'000);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto region = static_cast<std::uint32_t>(i / 2);
    const bs::NodeId src = ids[i];
    const bs::NodeId intra = ids[i ^ 1];
    const bs::NodeId cross = ids[(i + 2) % ids.size()];
    sim.post(region, start, [&net, src, intra, cross] {
      net.send(src, intra, bu::Bytes{6});
      net.send(src, cross, bu::Bytes{4});
    });
  }
  sim.run();

  const bo::ShardProfileSnapshot s = bo::shard_profiler().snapshot();
  cap.profile_json = s.to_json();
  cap.section = s.to_section();
  cap.registry_json = bo::registry().snapshot().to_json();
  cap.windows = s.windows;
  return cap;
}

}  // namespace

TEST(ShardProfile, ByteIdenticalAcrossShardCountsInclMidRun) {
  const RunCapture one = run_profiled(17, 1);
  const RunCapture two = run_profiled(17, 2);
  const RunCapture four = run_profiled(17, 4);
  ASSERT_GT(one.windows, 0u) << "multi-region run must go windowed";
  ASSERT_FALSE(one.midrun_json.empty()) << "exclusive event did not fire";
  EXPECT_EQ(one.profile_json, two.profile_json);
  EXPECT_EQ(one.profile_json, four.profile_json);
  EXPECT_EQ(one.section, two.section);
  EXPECT_EQ(one.section, four.section);
  EXPECT_EQ(one.registry_json, two.registry_json);
  EXPECT_EQ(one.registry_json, four.registry_json);
  EXPECT_EQ(one.midrun_json, two.midrun_json);
  EXPECT_EQ(one.midrun_json, four.midrun_json);
  EXPECT_EQ(one.midrun_section, two.midrun_section);
  EXPECT_EQ(one.midrun_section, four.midrun_section);
  // The mid-run read sees a strict prefix of the run: fewer windows than the
  // final snapshot, not a copy of it.
  EXPECT_NE(one.midrun_json, one.profile_json);
}

TEST(ShardProfile, RepeatedRunsAndSeedsBehave) {
  const RunCapture a = run_profiled(17, 2);
  const RunCapture b = run_profiled(17, 2);
  EXPECT_EQ(a.profile_json, b.profile_json) << "same seed must reproduce";
  EXPECT_EQ(a.registry_json, b.registry_json);
}

TEST(ShardProfile, JsonRoundTripsThroughParser) {
  const RunCapture cap = run_profiled(29, 2);
  // Deterministic half only.
  bo::ShardProfileSnapshot parsed;
  ASSERT_TRUE(bt::parse_shard_profile(cap.profile_json, parsed));
  EXPECT_EQ(parsed.to_json(), cap.profile_json);
  EXPECT_EQ(parsed.run_wall_ns, 0u);
  EXPECT_TRUE(parsed.workers.empty());
  // With the wall section: the wall fields must survive too.
  const bo::ShardProfileSnapshot live = bo::shard_profiler().snapshot();
  const std::string wall_json = live.to_json(/*include_wall=*/true);
  bo::ShardProfileSnapshot wall;
  ASSERT_TRUE(bt::parse_shard_profile(wall_json, wall));
  EXPECT_EQ(wall.windows, live.windows);
  EXPECT_EQ(wall.run_wall_ns, live.run_wall_ns);
  EXPECT_EQ(wall.barrier_wall_ns, live.barrier_wall_ns);
  EXPECT_EQ(wall.workers.size(), live.workers.size());

  bo::ShardProfileSnapshot junk;
  EXPECT_FALSE(bt::parse_shard_profile("{\"not_a_profile\":1}", junk));
  EXPECT_FALSE(bt::parse_shard_profile("", junk));
}

TEST(Slo, SpecGrammarParses) {
  bo::SloSpec s;
  ASSERT_TRUE(bo::parse_slo_spec("ttfb_us:p99<=250000", s));
  EXPECT_EQ(s.metric, "ttfb_us");
  EXPECT_EQ(s.agg, bo::SloSpec::Agg::Percentile);
  EXPECT_DOUBLE_EQ(s.pct, 99.0);
  EXPECT_EQ(s.op, bo::SloSpec::Op::Le);
  EXPECT_DOUBLE_EQ(s.target, 250000.0);
  EXPECT_EQ(s.name(), "ttfb_us:p99");

  ASSERT_TRUE(bo::parse_slo_spec("ttfb_us:p99.9<=400000", s));
  EXPECT_DOUBLE_EQ(s.pct, 99.9);
  EXPECT_EQ(s.name(), "ttfb_us:p99.9");

  ASSERT_TRUE(bo::parse_slo_spec("ttfb_us:count>=100000", s));
  EXPECT_EQ(s.agg, bo::SloSpec::Agg::Count);
  EXPECT_EQ(s.op, bo::SloSpec::Op::Ge);

  ASSERT_TRUE(bo::parse_slo_spec("region_imbalance<=1.5", s));
  EXPECT_EQ(s.agg, bo::SloSpec::Agg::Scalar);
  EXPECT_EQ(s.name(), "region_imbalance");

  std::string err;
  EXPECT_FALSE(bo::parse_slo_spec("no_operator", s, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(bo::parse_slo_spec("x:p200<=1", s, &err));
  EXPECT_FALSE(bo::parse_slo_spec("x:bogus<=1", s, &err));
  EXPECT_FALSE(bo::parse_slo_spec("x<=", s, &err));
  EXPECT_FALSE(bo::parse_slo_spec("<=5", s, &err));
}

TEST(Slo, PercentileIsNearestRank) {
  std::vector<std::int64_t> v{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_EQ(bo::slo_percentile(v, 50), 50);
  EXPECT_EQ(bo::slo_percentile(v, 99), 100);
  EXPECT_EQ(bo::slo_percentile(v, 10), 10);
  EXPECT_EQ(bo::slo_percentile({}, 99), 0);
}

TEST(Slo, PercentileEdgeCases) {
  // Empty series is defined as 0 (the engine separately fails the spec as
  // missing — the helper itself must not trap).
  EXPECT_EQ(bo::slo_percentile({}, 50), 0);
  // Single sample: every percentile is that sample.
  EXPECT_EQ(bo::slo_percentile({42}, 0.001), 42);
  EXPECT_EQ(bo::slo_percentile({42}, 50), 42);
  EXPECT_EQ(bo::slo_percentile({42}, 99.9), 42);
  EXPECT_EQ(bo::slo_percentile({42}, 100), 42);
  // Degenerate pct clamps to the extremes instead of indexing out of range.
  std::vector<std::int64_t> v{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_EQ(bo::slo_percentile(v, 0), 10);
  EXPECT_EQ(bo::slo_percentile(v, 100), 100);
  // Fractional percentiles on small N: ceil(99.9% of 10) = 10th sample.
  EXPECT_EQ(bo::slo_percentile(v, 99.9), 100);
  // ...and on N=1000 the nearest rank is the 999th sample, not the max.
  std::vector<std::int64_t> big(1000);
  for (int i = 0; i < 1000; ++i) big[static_cast<std::size_t>(i)] = i + 1;
  EXPECT_EQ(bo::slo_percentile(big, 99.9), 999);
  EXPECT_EQ(bo::slo_percentile(big, 99), 990);
  // The input need not be sorted (the helper sorts a copy).
  EXPECT_EQ(bo::slo_percentile({30, 10, 20}, 50), 20);
}

TEST(Slo, SpecGrammarRejectsGarbage) {
  bo::SloSpec s;
  std::string err;
  // Percentiles live in (0, 100]: p0 is meaningless under nearest-rank,
  // p100 is the max.
  EXPECT_FALSE(bo::parse_slo_spec("x:p0<=1", s, &err));
  EXPECT_NE(err.find("percentile"), std::string::npos);
  ASSERT_TRUE(bo::parse_slo_spec("x:p100<=1", s));
  EXPECT_DOUBLE_EQ(s.pct, 100.0);
  EXPECT_EQ(s.name(), "x:p100");
  // Mangled operators and non-numeric pieces all fail, never crash.
  EXPECT_FALSE(bo::parse_slo_spec("", s, &err));
  EXPECT_FALSE(bo::parse_slo_spec("x:p99<>5", s, &err));
  EXPECT_FALSE(bo::parse_slo_spec("x:p99<=5trailing", s, &err));
  EXPECT_FALSE(bo::parse_slo_spec("x:pabc<=5", s, &err));
  EXPECT_FALSE(bo::parse_slo_spec("x:p<=5", s, &err));
  EXPECT_FALSE(bo::parse_slo_spec(":p99<=5", s, &err));
  EXPECT_FALSE(bo::parse_slo_spec("x:<=5", s, &err));
  EXPECT_FALSE(bo::parse_slo_spec("x:p99<=", s, &err));
  // Whitespace is not stripped: a padded metric is a different (and almost
  // certainly missing) metric, and a padded target is not a number.
  ASSERT_TRUE(bo::parse_slo_spec(" x :p99<=5", s));
  EXPECT_EQ(s.metric, " x ");
  EXPECT_FALSE(bo::parse_slo_spec("x:p99<= 5 ", s, &err));
}

TEST(Slo, MissingMetricFailsTheRun) {
  bo::SloInput input;
  input.add_sample("ttfb_us", 100);
  bo::SloSpec ok;
  ASSERT_TRUE(bo::parse_slo_spec("ttfb_us:max<=200", ok));
  bo::SloSpec missing;
  ASSERT_TRUE(bo::parse_slo_spec("ghost_us:p50<=1", missing));
  const bo::SloReport report = bo::evaluate_slos("t", {ok, missing}, input);
  EXPECT_FALSE(report.pass());
  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_TRUE(report.results[0].ok);
  EXPECT_TRUE(report.results[1].missing);
  EXPECT_FALSE(report.results[1].ok);
}

TEST(Slo, ReportJsonIsByteStable) {
  bo::SloInput input;
  for (int i = 1; i <= 100; ++i) input.add_sample("ttfb_us", i * 10);
  input.set_scalar("windows", 55);
  std::vector<bo::SloSpec> specs(3);
  ASSERT_TRUE(bo::parse_slo_spec("ttfb_us:p99<=990", specs[0]));
  ASSERT_TRUE(bo::parse_slo_spec("ttfb_us:count>=100", specs[1]));
  ASSERT_TRUE(bo::parse_slo_spec("windows>=50", specs[2]));
  const std::string a = bo::evaluate_slos("s", specs, input).to_json();
  const std::string b = bo::evaluate_slos("s", specs, input).to_json();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"verdict\":\"pass\""), std::string::npos);
  specs.resize(1);
  ASSERT_TRUE(bo::parse_slo_spec("ttfb_us:p99<=10", specs[0]));
  const std::string f = bo::evaluate_slos("s", specs, input).to_json();
  EXPECT_NE(f.find("\"verdict\":\"fail\""), std::string::npos);
}

TEST(Slo, TraceEventsFeedTheEngine) {
  // Synthetic trace: 4 TTFB samples, two shard windows, one barrier.
  std::vector<bt::RawEvent> events;
  for (std::int64_t us : {100, 200, 300, 400}) {
    events.push_back(bt::RawEvent{.ts = us, .ev = "stream.ttfb", .a = 1,
                                  .b = static_cast<std::uint64_t>(us), .ok = 1});
  }
  events.push_back(bt::RawEvent{.ts = 1, .ev = "shard.window", .a = 0, .b = 30, .ok = 1});
  events.push_back(bt::RawEvent{.ts = 1, .ev = "shard.window", .a = 1, .b = 10, .ok = 1});
  events.push_back(bt::RawEvent{.ts = 1, .ev = "shard.barrier", .a = 2, .b = 40'000, .ok = 1});
  std::vector<bo::SloSpec> specs(3);
  ASSERT_TRUE(bo::parse_slo_spec("ttfb_us:count>=4", specs[0]));
  ASSERT_TRUE(bo::parse_slo_spec("windows>=1", specs[1]));
  ASSERT_TRUE(bo::parse_slo_spec("region_imbalance<=1.5", specs[2]));
  const bo::SloReport report = bt::evaluate_trace_slos(events, specs);
  EXPECT_TRUE(report.pass()) << report.to_string();
  // max=30 over mean=20 -> 1.5 exactly.
  EXPECT_DOUBLE_EQ(report.results[2].actual, 1.5);
}
