// Website-fingerprinting pipeline: sites, traces, features, classifiers,
// and a miniature Table-1 run.
#include <gtest/gtest.h>

#include "wf/classifier.hpp"
#include "wf/experiment.hpp"
#include "wf/features.hpp"
#include "wf/sites.hpp"

namespace bw = bento::wf;
namespace bu = bento::util;

TEST(Sites, PopularSitesAreDiverse) {
  bu::Rng rng(1);
  auto sites = bw::make_popular_sites(50, rng);
  ASSERT_EQ(sites.size(), 50u);
  std::set<std::size_t> totals;
  std::set<bento::tor::Addr> addrs;
  for (const auto& s : sites) {
    totals.insert(s.total_bytes());
    addrs.insert(s.addr);
    EXPECT_GE(s.total_bytes(), 50'000u);
    EXPECT_LE(s.total_bytes(), 4'000'000u);
    EXPECT_GE(s.resource_bytes.size(), 4u);
  }
  EXPECT_EQ(addrs.size(), 50u);       // unique addresses
  EXPECT_GE(totals.size(), 48u);      // essentially unique sizes
}

TEST(Sites, BodyDeterministicPerVisit) {
  bu::Rng rng(2);
  auto sites = bw::make_popular_sites(3, rng);
  auto a = sites[0].body_for("/", 7, 0.05);
  auto b = sites[0].body_for("/", 7, 0.05);
  auto c = sites[0].body_for("/", 8, 0.05);
  EXPECT_EQ(a, b);               // same visit: identical
  EXPECT_NE(a.size(), c.size());  // different visit: jittered (w.h.p.)
  EXPECT_EQ(bu::to_string(sites[0].body_for("/nope", 0, 0.0)), "404");
}

TEST(Sites, Table2SitesHaveExpectedShape) {
  auto sites = bw::table2_sites();
  ASSERT_EQ(sites.size(), 5u);
  EXPECT_EQ(sites[0].domain, "indiatoday.in");
  EXPECT_EQ(sites[4].domain, "aliexpress.com");
  // aliexpress is the smallest (3.1s fastest row in the paper).
  for (std::size_t i = 0; i + 1 < sites.size(); ++i) {
    EXPECT_GT(sites[i].total_bytes(), sites[4].total_bytes());
  }
}

namespace {
bw::Trace make_trace(std::initializer_list<std::tuple<double, bool, std::size_t>> evs,
                     int label) {
  bw::Trace t;
  for (const auto& [time, out, size] : evs) {
    t.events.push_back({time, out, size});
  }
  t.label = label;
  return t;
}
}  // namespace

TEST(Trace, Accounting) {
  auto t = make_trace({{0.0, true, 100}, {0.5, false, 1000}, {1.0, false, 500}}, 3);
  EXPECT_EQ(t.bytes_out(), 100u);
  EXPECT_EQ(t.bytes_in(), 1500u);
  EXPECT_DOUBLE_EQ(t.duration(), 1.0);
}

TEST(Features, FixedDimensionAndSensitivity) {
  auto t1 = make_trace({{0.0, true, 100}, {0.1, false, 5000}}, 0);
  auto t2 = make_trace({{0.0, true, 100}, {0.1, false, 90000}, {0.2, false, 90000}}, 1);
  auto f1 = bw::extract_features(t1);
  auto f2 = bw::extract_features(t2);
  EXPECT_EQ(f1.size(), bw::feature_dim());
  EXPECT_EQ(f2.size(), bw::feature_dim());
  EXPECT_NE(f1, f2);
  // Empty trace does not crash.
  auto f0 = bw::extract_features(bw::Trace{});
  EXPECT_EQ(f0.size(), bw::feature_dim());
}

TEST(Features, NormalizerZeroMeanUnitVar) {
  std::vector<bw::Features> rows = {{1, 10}, {3, 30}, {5, 50}};
  auto n = bw::Normalizer::fit(rows);
  auto z = n.apply({3, 30});
  EXPECT_NEAR(z[0], 0.0, 1e-9);
  EXPECT_NEAR(z[1], 0.0, 1e-9);
  auto hi = n.apply({5, 50});
  EXPECT_GT(hi[0], 1.0);
}

namespace {
// Synthetic classification problem: `classes` Gaussian blobs.
std::vector<bw::Example> blobs(int classes, int per_class, double spread,
                               bu::Rng& rng) {
  std::vector<bw::Example> out;
  for (int c = 0; c < classes; ++c) {
    const double cx = c * 10.0;
    const double cy = (c % 3) * 8.0;
    for (int i = 0; i < per_class; ++i) {
      out.push_back({{rng.gaussian(cx, spread), rng.gaussian(cy, spread)}, c});
    }
  }
  return out;
}
}  // namespace

TEST(Classifier, KnnSeparatesBlobs) {
  bu::Rng rng(5);
  auto train = blobs(5, 20, 1.0, rng);
  auto test = blobs(5, 10, 1.0, rng);
  bw::KnnClassifier knn(3);
  knn.train(train, rng);
  EXPECT_GT(knn.accuracy(test), 0.95);
}

TEST(Classifier, KnnChanceOnOverlappingBlobs) {
  bu::Rng rng(6);
  auto train = blobs(5, 20, 100.0, rng);  // hopeless overlap
  auto test = blobs(5, 10, 100.0, rng);
  bw::KnnClassifier knn(3);
  knn.train(train, rng);
  EXPECT_LT(knn.accuracy(test), 0.55);
}

TEST(Classifier, MlpSeparatesBlobs) {
  bu::Rng rng(7);
  auto train = blobs(6, 30, 1.2, rng);
  auto test = blobs(6, 12, 1.2, rng);
  bw::MlpClassifier mlp(6, 32, 40, 0.05);
  mlp.train(train, rng);
  EXPECT_GT(mlp.accuracy(test), 0.9);
}

TEST(Classifier, MlpBeatsChanceOnXor) {
  // Non-linearly-separable: requires the hidden layer.
  bu::Rng rng(8);
  std::vector<bw::Example> data;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform01() * 2 - 1;
    const double y = rng.uniform01() * 2 - 1;
    data.push_back({{x, y}, (x > 0) != (y > 0) ? 1 : 0});
  }
  std::vector<bw::Example> train(data.begin(), data.begin() + 300);
  std::vector<bw::Example> test(data.begin() + 300, data.end());
  bw::MlpClassifier mlp(2, 32, 80, 0.1);
  mlp.train(train, rng);
  EXPECT_GT(mlp.accuracy(test), 0.9);
}

TEST(Experiment, DefenseMetadata) {
  EXPECT_EQ(bw::padding_bytes(bw::Defense::None), 0u);
  EXPECT_EQ(bw::padding_bytes(bw::Defense::Browser1MB), 1'000'000u);
  EXPECT_EQ(bw::padding_bytes(bw::Defense::Browser7MB), 7'000'000u);
  EXPECT_NE(std::string(bw::to_string(bw::Defense::Browser0)).find("0MB"),
            std::string::npos);
}

TEST(Experiment, MiniTable1ShowsDefenseShape) {
  // Scaled-down Table 1: 8 sites, 5 visits. Unmodified Tor should be very
  // fingerprintable; Browser+1MB should crush accuracy toward chance.
  bu::Rng site_rng(99);
  auto sites = bw::make_popular_sites(8, site_rng);

  bw::CollectOptions options;
  options.visits_per_site = 5;
  options.seed = 7;

  options.defense = bw::Defense::None;
  auto plain = bw::collect_dataset(sites, options);
  ASSERT_EQ(plain.size(), 40u);

  options.defense = bw::Defense::Browser1MB;
  auto padded = bw::collect_dataset(sites, options);
  ASSERT_EQ(padded.size(), 40u);

  auto plain_attack = bw::evaluate_attack(plain, 8, 3, 1);
  auto padded_attack = bw::evaluate_attack(padded, 8, 3, 1);

  EXPECT_GT(plain_attack.knn_accuracy, 0.8);
  EXPECT_LT(padded_attack.knn_accuracy, plain_attack.knn_accuracy - 0.3);
}

TEST(Experiment, EvaluateAttackSplitsPerClass) {
  bu::Rng rng(10);
  auto data = blobs(4, 10, 1.0, rng);
  auto result = bw::evaluate_attack(data, 4, 6, 1);
  EXPECT_EQ(result.train_examples, 24);
  EXPECT_EQ(result.test_examples, 16);
  EXPECT_GT(result.knn_accuracy, 0.9);
}
