#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/zlite.hpp"

namespace bu = bento::util;
namespace zl = bento::util::zlite;

TEST(Zlite, EmptyRoundTrip) {
  bu::Bytes in;
  EXPECT_EQ(zl::decompress(zl::compress(in)), in);
}

TEST(Zlite, ShortRoundTrip) {
  bu::Bytes in = bu::to_bytes("abc");
  EXPECT_EQ(zl::decompress(zl::compress(in)), in);
}

TEST(Zlite, RepetitiveDataCompresses) {
  std::string s;
  for (int i = 0; i < 200; ++i) s += "the quick brown fox jumps over the lazy dog. ";
  bu::Bytes in = bu::to_bytes(s);
  bu::Bytes c = zl::compress(in);
  EXPECT_LT(c.size(), in.size() / 4);
  EXPECT_EQ(zl::decompress(c), in);
}

TEST(Zlite, RandomDataRoundTrips) {
  bu::Rng rng(1234);
  for (std::size_t n : {1u, 7u, 64u, 1000u, 50000u}) {
    bu::Bytes in = rng.bytes(n);
    EXPECT_EQ(zl::decompress(zl::compress(in)), in) << n;
  }
}

TEST(Zlite, HtmlLikeContentRoundTrips) {
  std::string page = "<html><head><title>x</title></head><body>";
  bu::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    page += "<div class=\"item\"><a href=\"/page" + std::to_string(rng.uniform(0, 30)) +
            "\">link</a></div>";
  }
  page += "</body></html>";
  bu::Bytes in = bu::to_bytes(page);
  bu::Bytes c = zl::compress(in);
  EXPECT_LT(c.size(), in.size());
  EXPECT_EQ(zl::decompress(c), in);
}

TEST(Zlite, RejectsBadMagic) {
  EXPECT_THROW(zl::decompress(bu::to_bytes("XX1abcdef")), bu::ParseError);
}

TEST(Zlite, RejectsTruncated) {
  bu::Bytes c = zl::compress(bu::to_bytes("hello hello hello hello"));
  c.resize(c.size() - 1);
  EXPECT_THROW(zl::decompress(c), bu::ParseError);
}

TEST(Zlite, RejectsCorruptDistance) {
  // Hand-craft: magic + original size 4 + match with distance 9 into empty output.
  bu::Writer w;
  w.raw(bu::to_bytes("ZL1"));
  w.varint(4);
  w.u8(0x01);
  w.varint(9);
  w.varint(4);
  EXPECT_THROW(zl::decompress(w.data()), bu::ParseError);
}

// Property sweep: all sizes round-trip for mixed compressible/random content.
class ZliteSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ZliteSweep, MixedContentRoundTrips) {
  bu::Rng rng(GetParam() * 77 + 1);
  bu::Bytes in;
  // Alternate random and repeated runs.
  while (in.size() < GetParam()) {
    if (rng.chance(0.5)) {
      bu::append(in, rng.bytes(rng.uniform(1, 50)));
    } else {
      bu::Bytes run(rng.uniform(4, 100), static_cast<std::uint8_t>(rng.uniform(0, 255)));
      bu::append(in, run);
    }
  }
  in.resize(GetParam());
  EXPECT_EQ(zl::decompress(zl::compress(in)), in);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ZliteSweep,
                         ::testing::Values(0, 1, 3, 4, 5, 16, 63, 64, 65, 255, 256,
                                           1023, 4096, 32768, 100000));
